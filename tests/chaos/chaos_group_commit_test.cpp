// Chaos suite for leader-side redo group commit (write-path batching): a DN
// Paxos leader is crashed in the middle of active group-commit windows —
// queued commits waiting on a shared flush, a flush in flight, acks being
// coalesced — and the cluster heals through election + failover promotion.
//
// Each transaction writes UNIQUE keys (above the preloaded table), so a
// CN-side commit acknowledgment maps 1:1 to rows that must exist later.
//
// Invariants, checked after the cluster quiesces:
//
//   G1  durability of the ack: every transaction whose commit was
//       acknowledged to the CN is visible on the serving engines after the
//       crash/failover — releasing a group-commit waiter early would lose
//       exactly these;
//   G2  boundary alignment: no member's log has a flush watermark inside
//       an MTR, and every log parses cleanly to its end — a partially
//       flushed group must never be replayed past its last complete MTR.
//
// A guard run with the durability wait disabled (acks sent before the
// group flush replicates) must violate G1 under the same leader crash.
//
// A failing seed is replayable with POLARX_CHAOS_SEED=<seed>.
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <memory>
#include <vector>

#include "src/cn/sim_cluster.h"
#include "src/sim/network.h"
#include "src/sim/scheduler.h"
#include "src/storage/key_codec.h"
#include "src/workload/sysbench.h"
#include "tests/chaos/chaos_util.h"

namespace polarx {
namespace {

constexpr sim::SimTime kMs = 1000;  // microseconds per millisecond
constexpr TableId kTable = 1;       // SimCluster's sysbench table
constexpr int64_t kUniqueBase = 100000;  // above every preloaded row id

struct GroupCommitFixture {
  sim::Scheduler sched;
  sim::Network net;
  /// Indirection so the step hook can be assigned after the cluster exists.
  std::shared_ptr<std::function<void(int, int)>> step_hook =
      std::make_shared<std::function<void(int, int)>>();
  std::unique_ptr<SimCluster> cluster;
  /// Keys of every transaction whose commit the CN saw acknowledged.
  std::vector<int64_t> acked_keys;
  int64_t next_unique = kUniqueBase;

  explicit GroupCommitFixture(SimClusterConfig cfg)
      : net(&sched, [] {
          sim::NetworkConfig nc;
          nc.jitter = 0;
          return nc;
        }()) {
    cfg.num_dcs = 3;
    cfg.cns_per_dc = 1;
    cfg.num_dns = 3;
    cfg.table_size = 400;
    auto hook = step_hook;
    cfg.commit_step_hook = [hook](int cn, int step) {
      if (*hook) (*hook)(cn, step);
    };
    cluster = std::make_unique<SimCluster>(&sched, &net, cfg);
    cluster->LoadSysbenchTable();
  }

  void CrashNode(NodeId node) {
    net.SetNodeUp(node, false);
    cluster->HandleNodeCrash(node);
  }
  void RestartNode(NodeId node) {
    net.SetNodeUp(node, true);
    cluster->HandleNodeRestart(node);
  }

  /// A write transaction inserting `width` fresh unique keys (usually
  /// spanning DNs, so it runs full 2PC). On commit ack, the keys join
  /// acked_keys — the rows G1 demands back after the crash. With
  /// target_dn >= 0, only keys hashing to that DN are used, pinning the
  /// whole transaction (prepare, decide, commit records) to one leader
  /// log. on_ack, if set, runs after each successful commit ack.
  void StartUniqueKeyClient(int cn, int txns, int width, int target_dn = -1,
                            std::function<void()> on_ack = nullptr) {
    auto submit = std::make_shared<std::function<void(int)>>();
    *submit = [this, cn, width, target_dn, on_ack, submit](int left) {
      if (left <= 0) return;
      SysbenchTxn txn;
      txn.read_only = false;
      std::vector<int64_t> keys;
      for (int w = 0; w < width; ++w) {
        int64_t key = next_unique++;
        while (target_dn >= 0 && cluster->DnOfKey(key) != target_dn) {
          key = next_unique++;
        }
        keys.push_back(key);
        txn.ops.push_back(
            {SysbenchOp::Type::kInsert, key, /*range_len=*/0});
      }
      cluster->SubmitTxn(
          cn, txn, [this, keys, on_ack, submit, left](bool ok, sim::SimTime) {
            if (ok) {
              acked_keys.insert(acked_keys.end(), keys.begin(), keys.end());
              if (on_ack) on_ack();
            }
            (*submit)(left - 1);
          });
    };
    (*submit)(txns);
  }

  void RunUntil(sim::SimTime horizon) {
    while (sched.Now() < horizon && sched.Step()) {
    }
  }

  /// G1: every acked key readable on its DN's serving engine. Returns the
  /// number of missing keys (0 required in the safe configuration).
  int MissingAckedKeys() {
    Timestamp everything = std::numeric_limits<Timestamp>::max();
    int missing = 0;
    for (int64_t key : acked_keys) {
      int d = cluster->DnOfKey(key);
      Row row;
      if (!cluster->dn_engine(d)
               ->ReadAt(everything, kTable, EncodeKey({key}), &row)
               .ok()) {
        ++missing;
      }
    }
    return missing;
  }

  /// G2: every member log's flush watermark sits on an MTR boundary and
  /// the log parses cleanly end to end.
  void CheckBoundaryAlignment() {
    for (int d = 0; d < cluster->num_dns(); ++d) {
      for (int m = 0; m < cluster->dn_member_count(d); ++m) {
        RedoLog* log = cluster->dn_member_log(d, m);
        EXPECT_EQ(log->BoundaryBefore(log->flushed_lsn()),
                  log->flushed_lsn())
            << "dn " << d << " member " << m
            << " flushed mid-MTR: a torn group would replay";
        std::vector<RedoRecord> recs;
        EXPECT_TRUE(
            log->ReadRecords(log->purged_before(), log->current_lsn(), &recs)
                .ok())
            << "dn " << d << " member " << m << " log does not parse";
      }
    }
  }
};

// ---- main sweep: DN leader killed while group-commit windows are hot ----

struct SweepTotals {
  uint64_t failovers = 0;
  uint64_t grouped_flushes = 0;
  uint64_t acked = 0;
};

void RunGroupCommitChaos(uint64_t seed, SweepTotals* totals) {
  SimClusterConfig cfg;
  cfg.seed = seed;
  GroupCommitFixture f(cfg);

  // Crash the victim DN's original leader at the first commit ack after a
  // seeded arming time — the instant a group-commit waiter was just
  // released, with the freshest commit records still inside their
  // replication window and more commits queued behind the next flush.
  const int victim_dn = int(seed % 3);
  const sim::SimTime arm_at = (5 + sim::SimTime(seed % 20)) * kMs;
  NodeId victim = f.cluster->dn_member_nodes(victim_dn)[0];
  GroupCommitFixture* fp = &f;
  auto armed = std::make_shared<bool>(false);
  auto crashed = std::make_shared<bool>(false);
  f.sched.ScheduleAfter(arm_at, [armed] { *armed = true; });
  *f.step_hook = [fp, victim, armed, crashed](int, int step) {
    if (!*armed || *crashed || step != int(CommitStep::kFirstCommitAcked)) {
      return;
    }
    *crashed = true;
    fp->CrashNode(victim);
  };
  f.sched.ScheduleAfter(arm_at + 900 * kMs, [fp, victim, crashed] {
    if (*crashed) fp->RestartNode(victim);
  });

  // Enough concurrent closed-loop writers that commits genuinely overlap:
  // several submits land inside one 40us flush window.
  for (int c = 0; c < 3; ++c) {
    for (int chain = 0; chain < 6; ++chain) {
      f.StartUniqueKeyClient(c, /*txns=*/6, /*width=*/2);
    }
  }
  // Horizon >> crash + election + failover promotion + retry-driven
  // completion of transactions caught mid-commit.
  f.RunUntil(6000 * kMs);

  // Telemetry before the invariants: batching must actually be happening,
  // or this sweep tests nothing.
  for (int d = 0; d < f.cluster->num_dns(); ++d) {
    totals->grouped_flushes += f.cluster->dn_group_commit(d)->grouped_flushes();
  }
  totals->failovers += f.cluster->stats().leader_failovers;
  totals->acked += f.acked_keys.size();

  EXPECT_EQ(f.MissingAckedKeys(), 0)
      << "an acknowledged commit vanished in the leader crash (G1); a "
         "group-commit waiter was released before its group was durable";
  f.CheckBoundaryAlignment();
}

TEST(ChaosGroupCommitTest, LeaderCrashMidGroupCommitSweep) {
  SweepTotals totals;
  chaos::SeedSweep(50, [&](uint64_t seed) {
    RunGroupCommitChaos(seed, &totals);
  });
  if (std::getenv("POLARX_CHAOS_SEED") == nullptr) {
    EXPECT_GT(totals.failovers, 25u)
        << "most seeds must actually lose their leader";
    EXPECT_GT(totals.grouped_flushes, 0u)
        << "no flush ever covered more than one commit: the sweep never "
           "exercised group commit";
    EXPECT_GT(totals.acked, 0u);
  }
}

// ---- guard: acking before the group flush is durable loses commits ----

TEST(ChaosGroupCommitTest, GuardAckBeforeDurabilityLosesAckedCommits) {
  // Same leader crash, but DN handlers reply the moment the engine op
  // lands in the leader's volatile log (wait_commit_durability = false),
  // so acks no longer wait for the group flush to reach a quorum. The
  // race is made deterministic with a short fault window: the victim
  // leader's outbound replication links are cut a few ms into the burst
  // (acks keep flowing — they need no follower), and the leader crashes
  // 4ms later. Every transaction acked inside the window has its records
  // in the dead leader's log only; after failover promotes a follower,
  // those acknowledged rows are gone. In the safe configuration the same
  // fault plan loses nothing, because the committer refuses to ack until
  // the group is quorum-durable — which a cut link simply stalls.
  int lost_total = 0;
  for (uint64_t seed : {2u, 5u, 9u, 13u, 21u}) {
    SimClusterConfig cfg;
    cfg.seed = seed;
    cfg.wait_commit_durability = false;
    GroupCommitFixture f(cfg);

    // DN victim's leader shares a DC with CN victim_dn, so the whole
    // transaction (ops, prepare, decide, commit) is intra-DC and fast.
    const int victim_dn = int(seed % 3);
    std::vector<NodeId> members = f.cluster->dn_member_nodes(victim_dn);
    GroupCommitFixture* fp = &f;
    const sim::SimTime block_at = (6 + sim::SimTime(seed % 4)) * kMs;
    f.sched.ScheduleAfter(block_at, [fp, members] {
      sim::LinkFault cut;
      cut.blocked = true;
      for (size_t i = 1; i < members.size(); ++i) {
        fp->net.SetLinkFault(members[0], members[i], cut);
      }
    });
    f.sched.ScheduleAfter(block_at + 4 * kMs, [fp, members] {
      for (size_t i = 1; i < members.size(); ++i) {
        fp->net.SetLinkFault(members[0], members[i], sim::LinkFault{});
      }
      fp->CrashNode(members[0]);
    });

    for (int chain = 0; chain < 4; ++chain) {
      f.StartUniqueKeyClient(victim_dn, /*txns=*/20, /*width=*/1, victim_dn);
    }
    f.RunUntil(6000 * kMs);
    lost_total += f.MissingAckedKeys();
  }
  EXPECT_GT(lost_total, 0)
      << "acking before group-commit durability should have lost commits — "
         "if this passes, the guard lost its teeth";
}

}  // namespace
}  // namespace polarx
