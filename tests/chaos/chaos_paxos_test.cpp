// Chaos/invariant suite for Paxos-with-leader-lease redo replication (§III).
//
// Each seed builds a live group, arms a FaultPlan generated from that seed
// (node crash/restart pairs, datacenter partitions, network-wide lossy
// windows with drop/duplication/delay-spike probabilities), and keeps a
// client appending transactions at whichever member currently believes it is
// leader. While the chaos runs, the committed prefix — bytes below the
// maximum DLSN — is periodically checksummed. After the plan heals itself
// the suite asserts the protocol's safety invariants:
//
//   I1  a leader is re-established once faults stop;
//   I2  agreement: every member's log is byte-identical;
//   I3  durability: every acknowledged transaction is still in the log;
//   I4  stability: every sampled committed prefix matches the final bytes;
//   I5  apply order: applied_lsn <= dlsn <= current_lsn on every member.
//
// A failing seed is printed by SeedSweep and replayable with
// POLARX_CHAOS_SEED=<seed>.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/consensus/paxos.h"
#include "src/sim/fault_injector.h"
#include "src/sim/network.h"
#include "src/storage/key_codec.h"
#include "tests/chaos/chaos_util.h"

namespace polarx {
namespace {

RedoRecord ChaosRecord(TxnId txn) {
  RedoRecord rec;
  rec.type = RedoType::kInsert;
  rec.txn_id = txn;
  rec.table_id = 1;
  rec.key = EncodeKey({int64_t(txn)});
  rec.row = {int64_t(txn), std::string("chaos-") + std::to_string(txn)};
  return rec;
}

/// A Paxos group under client load: members spread over three DCs, one
/// AsyncCommitter per member, acked/failed transaction tracking, and
/// committed-prefix checksum sampling.
struct ChaosHarness {
  sim::Scheduler sched;
  sim::Network net;
  std::vector<std::unique_ptr<RedoLog>> logs;
  std::unique_ptr<PaxosGroup> group;
  std::map<NodeId, std::unique_ptr<AsyncCommitter>> committers;
  std::set<TxnId> acked;
  std::set<TxnId> aborted;
  TxnId next_txn = 1;
  std::vector<std::pair<Lsn, uint32_t>> prefix_samples;

  ChaosHarness(uint64_t seed, int num_members, int num_loggers = 0)
      : net(&sched, [seed] {
          sim::NetworkConfig nc;
          nc.seed = seed;  // jitter stays at its nonzero default
          return nc;
        }()) {
    // Chaos legitimately trips warn paths; stay quiet unless the operator
    // asked for verbosity while replaying a seed.
    if (std::getenv("POLARX_LOG_LEVEL") == nullptr) {
      SetLogLevel(LogLevel::kError);
    }
    group = std::make_unique<PaxosGroup>(&net);
    for (int i = 0; i < num_members; ++i) {
      logs.push_back(std::make_unique<RedoLog>());
      NodeId n = net.AddNode(DcId(i % 3), "dn-" + std::to_string(i));
      PaxosRole role = i == 0 ? PaxosRole::kLeader
                     : i >= num_members - num_loggers ? PaxosRole::kLogger
                                                      : PaxosRole::kFollower;
      group->AddMember(n, role, logs.back().get());
    }
    group->Start();
    for (auto& m : group->members()) {
      committers[m->node()] = std::make_unique<AsyncCommitter>(m.get());
    }
  }

  /// One client tick: append a transaction at the current leader (if any)
  /// and park its commit on that member's committer. `failed` marks the
  /// transaction aborted — the client may NOT treat it as committed.
  void TryAppend() {
    PaxosMember* leader = group->CurrentLeader();
    if (leader == nullptr) return;
    TxnId txn = next_txn++;
    MtrHandle h = leader->Append({ChaosRecord(txn)});
    committers[leader->node()]->Submit(
        h.end_lsn, [this, txn] { acked.insert(txn); },
        [this, txn] { aborted.insert(txn); });
  }

  /// Checksums the committed prefix: bytes below the maximum DLSN are
  /// majority-durable, so they must read back identically forever.
  void SampleCommittedPrefix() {
    PaxosMember* best = nullptr;
    for (auto& m : group->members()) {
      if (best == nullptr || m->dlsn() > best->dlsn()) best = m.get();
    }
    Lsn watermark = best->dlsn();
    if (watermark <= 1) return;
    std::string bytes;
    best->log()->ReadBytes(1, watermark, &bytes);
    prefix_samples.emplace_back(watermark,
                                Crc32(bytes.data(), bytes.size()));
  }
};

void RunPaxosChaos(uint64_t seed, int num_members, int num_loggers) {
  ChaosHarness h(seed, num_members, num_loggers);

  sim::FaultPlanConfig fc;
  fc.seed = seed;
  fc.duration_us = 10 * sim::kUsPerSec;
  std::vector<NodeId> crashable;
  for (auto& m : h.group->members()) crashable.push_back(m->node());
  sim::FaultPlan plan = sim::FaultPlan::Generate(fc, crashable, {0, 1, 2});
  sim::FaultInjector injector(&h.net, plan);
  injector.SetRestartHook(
      [&h](NodeId n) { h.group->member(n)->Recover(); });
  injector.Arm();

  for (sim::SimTime t = 10 * sim::kUsPerMs; t < fc.duration_us;
       t += 10 * sim::kUsPerMs) {
    h.sched.ScheduleAt(t, [&h] { h.TryAppend(); });
  }
  for (sim::SimTime t = 50 * sim::kUsPerMs; t < fc.duration_us;
       t += 50 * sim::kUsPerMs) {
    h.sched.ScheduleAt(t, [&h] { h.SampleCommittedPrefix(); });
  }

  // Chaos window, then a fault-free convergence window (heartbeats repair
  // lagging followers; election churn settles).
  h.sched.RunUntil(fc.duration_us + 6 * sim::kUsPerSec);

  // I1: leadership recovers once faults stop.
  PaxosMember* leader = h.group->CurrentLeader();
  ASSERT_NE(leader, nullptr) << "no leader after the heal window";

  // I2: agreement — all members converged to byte-identical logs.
  std::string leader_bytes;
  leader->log()->ReadBytes(1, leader->log()->current_lsn(), &leader_bytes);
  for (auto& m : h.group->members()) {
    EXPECT_EQ(m->log()->current_lsn(), leader->log()->current_lsn())
        << "node " << m->node() << " log length diverges";
    std::string bytes;
    m->log()->ReadBytes(1, m->log()->current_lsn(), &bytes);
    EXPECT_TRUE(bytes == leader_bytes)
        << "node " << m->node() << " log bytes diverge";
  }

  // I3: durability — every acked transaction survived in the final log.
  std::vector<RedoRecord> recs;
  ASSERT_TRUE(
      leader->log()->ReadRecords(1, leader->log()->current_lsn(), &recs)
          .ok());
  std::set<TxnId> present;
  for (const auto& rec : recs) {
    if (rec.type == RedoType::kInsert) present.insert(rec.txn_id);
  }
  for (TxnId txn : h.acked) {
    EXPECT_TRUE(present.count(txn) > 0)
        << "acked txn " << txn << " lost after failover";
  }

  // I4: committed prefixes are immutable — every checksum taken during the
  // chaos still matches the final log bytes.
  for (const auto& [watermark, crc] : h.prefix_samples) {
    std::string bytes;
    leader->log()->ReadBytes(1, watermark, &bytes);
    EXPECT_EQ(Crc32(bytes.data(), bytes.size()), crc)
        << "committed prefix [1," << watermark << ") was rewritten";
  }

  // I5: no member applies beyond durability.
  for (auto& m : h.group->members()) {
    EXPECT_LE(m->applied_lsn(), m->dlsn()) << "node " << m->node();
    EXPECT_LE(m->dlsn(), m->log()->current_lsn()) << "node " << m->node();
  }

  // Progress sanity: with at most one node down at a time the group keeps a
  // majority, so chaos must not have halted commits entirely.
  EXPECT_GT(h.acked.size(), 0u) << "no transaction ever committed";
}

TEST(ChaosPaxosTest, ThreeNodeSweep) {
  chaos::SeedSweep(50, [](uint64_t seed) { RunPaxosChaos(seed, 3, 0); });
}

TEST(ChaosPaxosTest, ThreeNodeWithLoggerSweep) {
  chaos::SeedSweep(25, [](uint64_t seed) { RunPaxosChaos(seed, 3, 1); });
}

TEST(ChaosPaxosTest, FiveNodeSweep) {
  // Five members: duplicated vote grants would manufacture a quorum of 3
  // from 2 real voters if counting were not set-based.
  chaos::SeedSweep(25, [](uint64_t seed) { RunPaxosChaos(seed, 5, 0); });
}

// Satellite: kill the leader at a seeded instant while commits are in
// flight; after re-election no acknowledged transaction may be missing.
TEST(ChaosPaxosTest, LeaderKilledMidCommitLosesNoAckedTxn) {
  chaos::SeedSweep(50, [](uint64_t seed) {
    ChaosHarness h(seed, 3, 0);
    Rng rng(seed * 31 + 7);

    // Client load: one append every 5ms for 2s.
    for (sim::SimTime t = 5 * sim::kUsPerMs; t < 2 * sim::kUsPerSec;
         t += 5 * sim::kUsPerMs) {
      h.sched.ScheduleAt(t, [&h] { h.TryAppend(); });
    }

    // Kill whichever member leads at a random instant in the thick of the
    // load, so appends are mid-replication when it dies.
    sim::SimTime kill_at =
        100 * sim::kUsPerMs + rng.Uniform(1500 * sim::kUsPerMs);
    PaxosMember* victim = nullptr;
    h.sched.ScheduleAt(kill_at, [&h, &victim] {
      victim = h.group->CurrentLeader();
      if (victim != nullptr) h.net.SetNodeUp(victim->node(), false);
    });
    // Restart it later so the end state includes a recovered ex-leader.
    h.sched.ScheduleAt(kill_at + 800 * sim::kUsPerMs, [&h, &victim] {
      if (victim == nullptr) return;
      h.net.SetNodeUp(victim->node(), true);
      victim->Recover();
    });

    h.sched.RunUntil(2 * sim::kUsPerSec + 5 * sim::kUsPerSec);

    PaxosMember* leader = h.group->CurrentLeader();
    ASSERT_NE(leader, nullptr);
    std::vector<RedoRecord> recs;
    ASSERT_TRUE(
        leader->log()->ReadRecords(1, leader->log()->current_lsn(), &recs)
            .ok());
    std::set<TxnId> present;
    for (const auto& rec : recs) {
      if (rec.type == RedoType::kInsert) present.insert(rec.txn_id);
    }
    for (TxnId txn : h.acked) {
      EXPECT_TRUE(present.count(txn) > 0)
          << "txn " << txn << " acked before the leader died, then lost";
    }
    EXPECT_GT(h.acked.size(), 0u);
  });
}

}  // namespace
}  // namespace polarx
