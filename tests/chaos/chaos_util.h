// Shared helpers for the chaos suites: a seed-sweep driver whose failure
// output names the exact seed (and the env var to replay just that seed),
// so any red run is reproducible with
//   POLARX_CHAOS_SEED=<seed> ctest -R <suite> --output-on-failure
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <string>

namespace polarx::chaos {

/// Runs `body(seed)` for seeds [0, num_seeds), or for just the seed named by
/// POLARX_CHAOS_SEED when set. Each seed runs under a SCOPED_TRACE carrying
/// the reproduction one-liner, so a failing assertion prints its seed.
inline void SeedSweep(int num_seeds,
                      const std::function<void(uint64_t)>& body) {
  const char* fixed = std::getenv("POLARX_CHAOS_SEED");
  if (fixed != nullptr) {
    uint64_t seed = std::strtoull(fixed, nullptr, 10);
    SCOPED_TRACE("replaying POLARX_CHAOS_SEED=" + std::to_string(seed));
    body(seed);
    return;
  }
  for (int s = 0; s < num_seeds; ++s) {
    uint64_t seed = uint64_t(s);
    SCOPED_TRACE("seed " + std::to_string(seed) +
                 " (replay: POLARX_CHAOS_SEED=" + std::to_string(seed) +
                 ")");
    body(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace polarx::chaos
