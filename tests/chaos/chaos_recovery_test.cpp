// Chaos suite for end-to-end transaction survivability on the simulated
// multi-DC cluster (src/cn/sim_cluster.h): coordinator (CN) crashes at
// every 2PC step boundary, DN Paxos leader flaps mid-commit, and TSO
// outages — all under the retryable RPC layer, GMS-lease-driven in-doubt
// recovery, and leader-failover-aware routing.
//
// Invariants, checked on every DN engine after the cluster quiesces:
//
//   R1  no branch is left PREPARED (in-doubt resolution terminates);
//   R2  no ACTIVE branch of a distributed transaction remains (write
//       intents of dead coordinators are released);
//   R3  all branches of one global transaction agree on the outcome —
//       all committed at the same commit_ts, or all aborted (atomicity);
//   R4  committed branches satisfy commit_ts >= prepare_ts (HLC-SI
//       monotonicity survives recovery and failover).
//
// A guard run with retries and recovery disabled must violate R1 — the
// violation the survivability layer exists to prevent.
//
// A failing seed is replayable with POLARX_CHAOS_SEED=<seed>.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/cn/sim_cluster.h"
#include "src/sim/network.h"
#include "src/sim/scheduler.h"
#include "src/workload/sysbench.h"
#include "tests/chaos/chaos_util.h"

namespace polarx {
namespace {

constexpr sim::SimTime kMs = 1000;  // microseconds per millisecond

/// A small 3-DC cluster (one CN per DC, 3 DN groups) under a chaos seed.
struct ChaosFixture {
  sim::Scheduler sched;
  sim::Network net;
  /// Indirection so the hook can be (re)assigned after the cluster exists.
  std::shared_ptr<std::function<void(int, int)>> step_hook =
      std::make_shared<std::function<void(int, int)>>();
  std::unique_ptr<SimCluster> cluster;

  explicit ChaosFixture(SimClusterConfig cfg)
      : net(&sched, [] {
          sim::NetworkConfig nc;
          nc.jitter = 0;
          return nc;
        }()) {
    cfg.num_dcs = 3;
    cfg.cns_per_dc = 1;
    cfg.num_dns = 3;
    cfg.table_size = 400;
    auto hook = step_hook;
    cfg.commit_step_hook = [hook](int cn, int step) {
      if (*hook) (*hook)(cn, step);
    };
    cluster = std::make_unique<SimCluster>(&sched, &net, cfg);
    cluster->LoadSysbenchTable();
  }

  void CrashNode(NodeId node) {
    net.SetNodeUp(node, false);
    cluster->HandleNodeCrash(node);
  }
  void RestartNode(NodeId node) {
    net.SetNodeUp(node, true);
    cluster->HandleNodeRestart(node);
  }

  /// Starts a closed-loop write client on CN `cn`; decrements *remaining
  /// per completion. If the CN dies mid-transaction the chain just stops.
  void StartClient(int cn, int txns, std::shared_ptr<int> remaining,
                   uint64_t seed) {
    Sysbench bench({.mode = SysbenchMode::kWriteOnly, .table_size = 400});
    auto rng = std::make_shared<Rng>(seed);
    auto submit = std::make_shared<std::function<void(int)>>();
    *submit = [this, cn, bench, rng, submit, remaining](int left) {
      if (left <= 0) return;
      cluster->SubmitTxn(cn, bench.NextTxn(rng.get()),
                         [submit, left, remaining](bool, sim::SimTime) {
                           --*remaining;
                           (*submit)(left - 1);
                         });
    };
    (*submit)(txns);
  }

  void RunUntil(sim::SimTime horizon) {
    while (sched.Now() < horizon && sched.Step()) {
    }
  }
};

/// Checks invariants R1-R4 over every DN's transaction snapshot.
/// `dead_coordinator` is the coordinator incarnation killed mid-2PC (0 if
/// none); its branches especially must be fully resolved.
void CheckSurvivabilityInvariants(SimCluster* cluster,
                                  uint32_t dead_coordinator) {
  struct BranchView {
    int dn;
    TxnInfo info;
  };
  std::map<GlobalTxnId, std::vector<BranchView>> by_global;
  for (int d = 0; d < cluster->num_dns(); ++d) {
    for (const TxnInfo& info : cluster->dn_engine(d)->TxnsSnapshot()) {
      // R1: nothing in doubt anywhere.
      EXPECT_NE(info.state, TxnState::kPrepared)
          << "dn " << d << " branch " << info.id << " of global "
          << info.global_id << " (coordinator " << info.coordinator
          << ") left PREPARED";
      if (info.global_id == kInvalidGlobalTxnId) continue;
      // R2: no write intents held by unfinished distributed branches.
      EXPECT_NE(info.state, TxnState::kActive)
          << "dn " << d << " still holds intents of global "
          << info.global_id << " (coordinator " << info.coordinator << ")";
      by_global[info.global_id].push_back({d, info});
    }
  }
  for (const auto& [gid, branches] : by_global) {
    const bool dead = (gid >> 32) == dead_coordinator;
    bool any_committed = false, any_aborted = false;
    Timestamp commit_ts = 0;
    for (const BranchView& b : branches) {
      if (b.info.state == TxnState::kCommitted) {
        any_committed = true;
        if (commit_ts == 0) commit_ts = b.info.commit_ts;
        // R3a: committed branches share one commit timestamp.
        EXPECT_EQ(b.info.commit_ts, commit_ts)
            << "global " << gid << " committed at different timestamps"
            << (dead ? " (dead coordinator)" : "");
        // R4: HLC-SI monotonicity.
        EXPECT_GE(b.info.commit_ts, b.info.prepare_ts)
            << "global " << gid << " dn " << b.dn
            << " commit_ts below prepare_ts";
      } else if (b.info.state == TxnState::kAborted) {
        any_aborted = true;
      }
    }
    // R3: one outcome per global transaction.
    EXPECT_FALSE(any_committed && any_aborted)
        << "global " << gid << " committed on some DNs and aborted on others"
        << (dead ? " (dead coordinator)" : "");
  }
}

// ---- main sweep: coordinator killed at every 2PC step boundary while a
// DN leader flaps mid-run ----

struct SweepTotals {
  uint64_t rpc_retries = 0;
  uint64_t leader_failovers = 0;
  uint64_t recovery_resolved = 0;
  int seeds_with_kill = 0;
};

void RunRecoveryChaos(uint64_t seed, SweepTotals* totals) {
  SimClusterConfig cfg;
  cfg.seed = seed;
  ChaosFixture f(cfg);

  const int victim_cn = int(seed % 3);
  const int target_step = 1 + int(seed % 4);  // every CommitStep boundary
  const int flap_dn = int((seed >> 2) % 3);

  // Kill the coordinator the instant its write transaction reaches the
  // target 2PC step. Capture the incarnation id for the invariant check.
  auto killed = std::make_shared<bool>(false);
  auto dead_coordinator = std::make_shared<uint32_t>(0);
  ChaosFixture* fp = &f;
  *f.step_hook = [fp, victim_cn, target_step, killed,
                  dead_coordinator](int cn, int step) {
    if (*killed || cn != victim_cn || step != target_step) return;
    *killed = true;
    *dead_coordinator = fp->cluster->cn_coordinator_id(victim_cn);
    fp->CrashNode(fp->cluster->cn_node(victim_cn));
  };

  // Flap the DN leader mid-run: crash the original leader node at 60ms,
  // bring it back (as a follower) at 700ms.
  NodeId flap_node = f.cluster->dn_member_nodes(flap_dn)[0];
  f.sched.ScheduleAfter(60 * kMs, [fp, flap_node] {
    fp->CrashNode(flap_node);
  });
  f.sched.ScheduleAfter(700 * kMs, [fp, flap_node] {
    fp->RestartNode(flap_node);
  });

  // Odd seeds also restart the victim CN (a NEW coordinator incarnation;
  // the old one's transactions still need lease-expiry recovery).
  if (seed % 2 == 1) {
    f.sched.ScheduleAfter(1200 * kMs, [fp, victim_cn, killed] {
      if (*killed) fp->RestartNode(fp->cluster->cn_node(victim_cn));
    });
  }

  auto remaining = std::make_shared<int>(3 * 8);
  for (int c = 0; c < 3; ++c) {
    f.StartClient(c, 8, remaining, seed * 131 + uint64_t(c));
  }
  // Drive by horizon, not completion: the dead CN's client never finishes.
  // 3 virtual seconds >> lease (100ms) + recovery poll (50ms) + flap window.
  f.RunUntil(3000 * kMs);

  CheckSurvivabilityInvariants(f.cluster.get(), *dead_coordinator);

  // The cluster must still do useful work afterwards: fresh transactions
  // from a surviving CN all complete.
  int live_cn = (victim_cn + 1) % 3;
  auto probe_left = std::make_shared<int>(10);
  f.StartClient(live_cn, 10, probe_left, seed + 9999);
  uint64_t committed_before = f.cluster->stats().committed;
  f.RunUntil(f.sched.Now() + 2000 * kMs);
  EXPECT_EQ(*probe_left, 0) << "cluster cannot make progress after chaos";
  EXPECT_GT(f.cluster->stats().committed, committed_before)
      << "post-chaos probe committed nothing";
  CheckSurvivabilityInvariants(f.cluster.get(), *dead_coordinator);

  const SimClusterStats& stats = f.cluster->stats();
  totals->rpc_retries += stats.rpc_retries;
  totals->leader_failovers += stats.leader_failovers;
  totals->recovery_resolved +=
      stats.recovery_resolved_commits + stats.recovery_resolved_aborts;
  totals->seeds_with_kill += *killed ? 1 : 0;
}

TEST(ChaosRecoveryTest, CoordinatorKillsAtEveryStepSweep) {
  SweepTotals totals;
  chaos::SeedSweep(50, [&](uint64_t seed) {
    RunRecoveryChaos(seed, &totals);
  });
  // Across the sweep, every survivability mechanism must actually fire:
  // RPC retries (leader flaps force re-routing), leader failovers, and
  // recovery-resolved branches (killed coordinators leave in-doubt work).
  if (std::getenv("POLARX_CHAOS_SEED") == nullptr) {
    EXPECT_GT(totals.seeds_with_kill, 40);
    EXPECT_GT(totals.rpc_retries, 0u);
    EXPECT_GT(totals.leader_failovers, 0u);
    EXPECT_GT(totals.recovery_resolved, 0u);
  }
}

// ---- guard: with the survivability layer disabled, the same fault leaves
// branches in doubt — the violation recovery exists to prevent ----

TEST(ChaosRecoveryTest, GuardWithoutRecoveryLeavesBranchesInDoubt) {
  SimClusterConfig cfg;
  cfg.seed = 3;
  cfg.enable_retry = false;
  cfg.enable_recovery = false;
  ChaosFixture f(cfg);

  // Kill CN 0 the moment all branches of one of its transactions are
  // PREPARED but no decision is recorded: the canonical in-doubt window.
  auto killed = std::make_shared<bool>(false);
  ChaosFixture* fp = &f;
  *f.step_hook = [fp, killed](int cn, int step) {
    if (*killed || cn != 0 || step != int(CommitStep::kAllPrepared)) return;
    *killed = true;
    fp->CrashNode(fp->cluster->cn_node(0));
  };

  auto remaining = std::make_shared<int>(3 * 8);
  for (int c = 0; c < 3; ++c) {
    f.StartClient(c, 8, remaining, 17 + uint64_t(c));
  }
  f.RunUntil(3000 * kMs);

  ASSERT_TRUE(*killed) << "fault never triggered";
  int prepared = 0;
  for (int d = 0; d < f.cluster->num_dns(); ++d) {
    for (const TxnInfo& info : f.cluster->dn_engine(d)->TxnsSnapshot()) {
      prepared += info.state == TxnState::kPrepared ? 1 : 0;
    }
  }
  EXPECT_GT(prepared, 0)
      << "without recovery the killed coordinator's prepared branches must "
         "stay in doubt — if this passes, the guard lost its teeth";
  EXPECT_EQ(f.cluster->stats().recovery_resolved_commits, 0u);
  EXPECT_EQ(f.cluster->stats().recovery_resolved_aborts, 0u);
}

// ---- TSO outage: TSO-SI transactions retry with backoff then fail
// cleanly; HLC-SI is untouched by construction ----

TEST(ChaosRecoveryTest, TsoOutageFailsTsoSiTxnsCleanly) {
  SimClusterConfig cfg;
  cfg.seed = 11;
  cfg.scheme = TsScheme::kTsoSi;
  ChaosFixture f(cfg);

  ChaosFixture* fp = &f;
  f.sched.ScheduleAfter(30 * kMs, [fp] {
    fp->net.SetNodeUp(fp->cluster->tso_node(), false);
  });

  auto remaining = std::make_shared<int>(3 * 6);
  for (int c = 0; c < 3; ++c) {
    f.StartClient(c, 6, remaining, 23 + uint64_t(c));
  }
  // Every transaction must finish: committed before the outage, or aborted
  // after the retry budget (deadline 500ms) is exhausted — never hung.
  f.RunUntil(20000 * kMs);
  EXPECT_EQ(*remaining, 0)
      << "a TSO-SI transaction hung instead of failing cleanly";
  const SimClusterStats& stats = f.cluster->stats();
  EXPECT_EQ(stats.committed + stats.aborted, 18u);
  EXPECT_GT(stats.aborted, 0u) << "outage aborted nothing";
  EXPECT_GT(stats.rpc_retries, 0u) << "TSO calls never retried";
  CheckSurvivabilityInvariants(f.cluster.get(), 0);
}

TEST(ChaosRecoveryTest, TsoOutageDoesNotAffectHlcSi) {
  SimClusterConfig cfg;
  cfg.seed = 11;
  cfg.scheme = TsScheme::kHlcSi;
  ChaosFixture f(cfg);

  ChaosFixture* fp = &f;
  f.sched.ScheduleAfter(30 * kMs, [fp] {
    fp->net.SetNodeUp(fp->cluster->tso_node(), false);
  });

  auto remaining = std::make_shared<int>(3 * 8);
  for (int c = 0; c < 3; ++c) {
    f.StartClient(c, 8, remaining, 23 + uint64_t(c));
  }
  f.RunUntil(20000 * kMs);
  EXPECT_EQ(*remaining, 0) << "HLC-SI must not depend on the TSO";
  const SimClusterStats& stats = f.cluster->stats();
  EXPECT_EQ(stats.committed + stats.aborted, 24u);
  EXPECT_GT(stats.committed, 0u);
  EXPECT_EQ(f.cluster->tso()->requests_served(), 0u);
}

}  // namespace
}  // namespace polarx
