// Chaos/invariant suite for two-phase commit atomicity across DN
// crash-restart (§III/§IV).
//
// A sharded bank runs seeded transfers under a hand-rolled 2PC driver so
// that the fault injector can crash a participant DN at every protocol
// step: before prepare, between prepares, and in the window after the
// coordinator decided commit but before a participant logged the commit
// record. A crash discards the DN's volatile state (engine, catalog); the
// DN is rebuilt by replaying its redo log — exactly the recovery path —
// and in-doubt branches are resolved from the coordinator's decision
// (presumed-abort when no decision was reached).
//
// Invariants, checked after the run on every DN:
//
//   A1  atomicity: the final committed state equals the model that applied
//       exactly the coordinator-committed transfers — a transfer is never
//       half-applied, regardless of where the crash hit;
//   A2  conservation: total balance across all DNs is unchanged;
//   A3  recovery equivalence: replaying each DN's redo log from scratch
//       reproduces its live catalog (the log alone carries the state).
//
// A failing seed is replayable with POLARX_CHAOS_SEED=<seed>.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/clock/hlc.h"
#include "src/common/rng.h"
#include "src/replication/redo_applier.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/key_codec.h"
#include "src/storage/mvcc.h"
#include "src/txn/engine.h"
#include "tests/chaos/chaos_util.h"

namespace polarx {
namespace {

constexpr TableId kTable = 1;
constexpr int kDns = 3;
constexpr int kAccountsPerDn = 8;
constexpr int64_t kInitialBalance = 100;

Schema BankSchema() {
  return Schema({{"id", ValueType::kInt64, false},
                 {"bal", ValueType::kInt64, false}},
                {0});
}

/// One DN: a redo log that survives crashes, plus volatile state (catalog,
/// engine, buffer pool) that a crash discards.
struct Dn {
  uint64_t now_ms = 1000;
  Hlc hlc;
  RedoLog log;  // durable: survives crashes
  int generation = 0;
  std::unique_ptr<TableCatalog> catalog;
  std::unique_ptr<CountingPageStore> store;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<TxnEngine> engine;

  explicit Dn(int index) : hlc([this] { return now_ms; }), index_(index) {
    BuildVolatile(/*replay=*/false);
  }

  /// (Re)creates the volatile state. On replay, reconstructs the catalog
  /// from the redo log — the crash-recovery path.
  void BuildVolatile(bool replay) {
    catalog = std::make_unique<TableCatalog>();
    catalog->CreateTable(kTable, "bank", BankSchema(), 0);
    if (replay) {
      RedoApplier applier(catalog.get());
      std::vector<RedoRecord> records;
      EXPECT_TRUE(
          log.ReadRecords(log.purged_before(), log.current_lsn(), &records)
              .ok());
      EXPECT_TRUE(applier.ApplyAll(records).ok());
    }
    store = std::make_unique<CountingPageStore>();
    pool = std::make_unique<BufferPool>(store.get());
    // A fresh engine restarts its TxnId counter, so give each incarnation
    // its own id-namespace to keep recovered ids distinct from new ones.
    ++generation;
    engine = std::make_unique<TxnEngine>(
        uint32_t(index_ * 16 + generation), catalog.get(), &hlc, &log,
        pool.get());
  }

 private:
  int index_;
};

/// Coordinator-side record of one 2PC transfer, for crash resolution.
struct TransferOutcome {
  bool decided_commit = false;
  Timestamp commit_ts = 0;
  std::map<int, TxnId> branches;  // dn index -> branch id
};

struct TwoPcHarness {
  std::vector<std::unique_ptr<Dn>> dns;
  uint64_t cn_ms = 1000;
  Hlc cn_hlc;
  /// The model: balances as of every coordinator-decided commit.
  std::map<std::pair<int, int64_t>, int64_t> model;
  int crashes = 0;
  int commits = 0;
  int aborts = 0;

  TwoPcHarness() : cn_hlc([this] { return cn_ms; }) {
    for (int d = 0; d < kDns; ++d) {
      dns.push_back(std::make_unique<Dn>(d));
      Dn* dn = dns.back().get();
      TxnId txn = dn->engine->Begin();
      for (int a = 0; a < kAccountsPerDn; ++a) {
        EXPECT_TRUE(
            dn->engine->Upsert(txn, kTable, {AccountId(d, a), kInitialBalance})
                .ok());
        model[{d, AccountId(d, a)}] = kInitialBalance;
      }
      EXPECT_TRUE(dn->engine->CommitLocal(txn).ok());
    }
  }

  static int64_t AccountId(int dn, int account) {
    return int64_t(dn) * 1000 + account;
  }

  void Tick(Rng* rng) {
    cn_ms += rng->Uniform(3);
    for (auto& dn : dns) dn->now_ms += rng->Uniform(3);
  }

  /// Crash-restarts DN `d`: volatile state is lost, the redo log replayed,
  /// and `in_doubt` branches resolved from the coordinator's decision —
  /// commit if the coordinator decided commit, presumed-abort otherwise.
  /// The resolution records are appended to the redo log so the decision
  /// itself is durable for any later crash.
  void CrashRestart(int d, const std::vector<const TransferOutcome*>&
                               in_doubt) {
    ++crashes;
    Dn* dn = dns[d].get();
    dn->BuildVolatile(/*replay=*/true);
    for (const TransferOutcome* t : in_doubt) {
      auto it = t->branches.find(d);
      if (it == t->branches.end()) continue;
      RedoRecord rec;
      rec.txn_id = it->second;
      if (t->decided_commit) {
        rec.type = RedoType::kTxnCommit;
        rec.ts = t->commit_ts;
      } else {
        rec.type = RedoType::kTxnAbort;
      }
      dn->log.AppendMtr({rec});
    }
    // Replay once more so the resolutions take effect in the live catalog
    // (production folds this into one recovery pass; rebuilding twice
    // exercises the same code and keeps the helper simple).
    dn->BuildVolatile(/*replay=*/true);
  }

  /// Largest snapshot any DN could have stamped: safe read point.
  Timestamp FinalSnapshot() {
    Timestamp ts = cn_hlc.Now();
    for (auto& dn : dns) ts = std::max(ts, dn->hlc.Now());
    return ts;
  }
};

/// Reads the committed balance map of one DN's catalog at `snapshot`.
std::map<int64_t, int64_t> CommittedBalances(TableCatalog* catalog,
                                             Timestamp snapshot) {
  std::map<int64_t, int64_t> out;
  TableStore* table = catalog->FindTable(kTable);
  table->rows().ScanAll([&](const EncodedKey&, const VersionPtr& head) {
    const Version* v = LatestVisible(head, snapshot);
    if (v != nullptr && !v->deleted) {
      out[std::get<int64_t>(v->row[0])] = std::get<int64_t>(v->row[1]);
    }
    return true;
  });
  return out;
}

void Run2PcChaos(uint64_t seed) {
  Rng rng(seed);
  TwoPcHarness h;
  if (::testing::Test::HasFatalFailure()) return;

  for (int step = 0; step < 120; ++step) {
    h.Tick(&rng);

    // Occasional background crash with no transaction in flight.
    if (rng.Bernoulli(0.05)) {
      h.CrashRestart(int(rng.Uniform(kDns)), {});
      continue;
    }

    // One transfer between two distinct DNs under 2PC.
    int d1 = int(rng.Uniform(kDns));
    int d2 = int(rng.Uniform(kDns));
    if (d1 == d2) d2 = (d2 + 1) % kDns;
    int64_t k1 = TwoPcHarness::AccountId(d1, int(rng.Uniform(kAccountsPerDn)));
    int64_t k2 = TwoPcHarness::AccountId(d2, int(rng.Uniform(kAccountsPerDn)));
    int64_t amount = 1 + int64_t(rng.Uniform(20));

    TransferOutcome outcome;
    Timestamp snapshot = h.cn_hlc.Now();
    Dn* dn1 = h.dns[d1].get();
    Dn* dn2 = h.dns[d2].get();
    TxnId b1 = dn1->engine->Begin(snapshot);
    TxnId b2 = dn2->engine->Begin(snapshot);
    outcome.branches[d1] = b1;
    outcome.branches[d2] = b2;

    // Execute phase: read both balances, write both updates.
    Row r1, r2;
    bool ok = dn1->engine->Read(b1, kTable, EncodeKey({k1}), &r1).ok() &&
              dn2->engine->Read(b2, kTable, EncodeKey({k2}), &r2).ok();
    ok = ok &&
         dn1->engine
             ->Upsert(b1, kTable, {k1, std::get<int64_t>(r1[1]) - amount})
             .ok() &&
         dn2->engine
             ->Upsert(b2, kTable, {k2, std::get<int64_t>(r2[1]) + amount})
             .ok();

    // Crash point 1: participant dies before prepare — nothing durable,
    // presumed abort.
    if (ok && rng.Bernoulli(0.12)) {
      int victim = rng.Bernoulli(0.5) ? d1 : d2;
      h.CrashRestart(victim, {&outcome});
      // The surviving branch is aborted by the coordinator.
      int other = victim == d1 ? d2 : d1;
      h.dns[other]->engine->Abort(outcome.branches[other]);
      ++h.aborts;
      continue;
    }

    // Prepare phase.
    Timestamp max_prepare = 0;
    if (ok) {
      auto p1 = dn1->engine->Prepare(b1);
      ok = p1.ok();
      if (ok) max_prepare = std::max(max_prepare, p1.value());
      // Crash point 2: between the prepares — first participant holds a
      // durable PREPARED branch, coordinator reached no decision.
      if (ok && rng.Bernoulli(0.12)) {
        h.CrashRestart(d1, {&outcome});  // presumed abort resolves b1
        dn2->engine->Abort(b2);
        ++h.aborts;
        continue;
      }
      if (ok) {
        auto p2 = dn2->engine->Prepare(b2);
        ok = p2.ok();
        if (ok) max_prepare = std::max(max_prepare, p2.value());
      }
    }

    if (!ok) {
      dn1->engine->Abort(b1);
      dn2->engine->Abort(b2);
      ++h.aborts;
      continue;
    }

    // Decision: every participant prepared, so the transfer commits with
    // commit_ts = max prepare_ts (HLC-SI) — update the model now; the
    // invariant is that the state converges to it no matter what crashes.
    outcome.decided_commit = true;
    outcome.commit_ts = max_prepare;
    h.cn_hlc.Update(max_prepare);
    h.model[{d1, k1}] -= amount;
    h.model[{d2, k2}] += amount;
    ++h.commits;

    // Crash point 3: a participant dies after the decision but before its
    // commit record — recovery must still commit the branch (its writes
    // and prepare are durable in redo; the decision is re-delivered).
    bool crashed1 = false, crashed2 = false;
    if (rng.Bernoulli(0.12)) {
      int victim = rng.Bernoulli(0.5) ? d1 : d2;
      h.CrashRestart(victim, {&outcome});
      crashed1 = victim == d1;
      crashed2 = victim == d2;
    }
    if (!crashed1) {
      EXPECT_TRUE(dn1->engine->Commit(b1, outcome.commit_ts).ok());
    }
    if (!crashed2) {
      EXPECT_TRUE(dn2->engine->Commit(b2, outcome.commit_ts).ok());
    }
  }

  // Invariants A1 + A2: every DN's committed state equals the model.
  Timestamp snapshot = h.FinalSnapshot();
  int64_t total = 0;
  for (int d = 0; d < kDns; ++d) {
    std::map<int64_t, int64_t> live =
        CommittedBalances(h.dns[d]->catalog.get(), snapshot);
    ASSERT_EQ(live.size(), size_t(kAccountsPerDn)) << "dn " << d;
    for (const auto& [key, bal] : live) {
      auto it = h.model.find({d, key});
      ASSERT_NE(it, h.model.end());
      EXPECT_EQ(bal, it->second)
          << "dn " << d << " account " << key
          << " diverged from the committed-transfer model (atomicity)";
      total += bal;
    }
  }
  EXPECT_EQ(total, int64_t(kDns) * kAccountsPerDn * kInitialBalance)
      << "money created or destroyed by a torn 2PC";

  // Invariant A3: recovery from the redo log alone reproduces each DN.
  for (int d = 0; d < kDns; ++d) {
    TableCatalog recovered;
    recovered.CreateTable(kTable, "bank", BankSchema(), 0);
    RedoApplier applier(&recovered);
    std::vector<RedoRecord> records;
    ASSERT_TRUE(h.dns[d]
                    ->log
                    .ReadRecords(h.dns[d]->log.purged_before(),
                                 h.dns[d]->log.current_lsn(), &records)
                    .ok());
    ASSERT_TRUE(applier.ApplyAll(records).ok());
    EXPECT_EQ(CommittedBalances(&recovered, snapshot),
              CommittedBalances(h.dns[d]->catalog.get(), snapshot))
        << "dn " << d << " live state diverges from its own redo replay";
  }

  // The schedule must actually have exercised the interesting paths.
  EXPECT_GT(h.commits, 0) << "no transfer ever committed";
  EXPECT_GT(h.crashes, 0) << "no DN ever crashed";
}

TEST(Chaos2PcTest, AtomicityAcrossDnCrashRestartSweep) {
  chaos::SeedSweep(50, Run2PcChaos);
}

}  // namespace
}  // namespace polarx
