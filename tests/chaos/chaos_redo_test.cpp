// Chaos/invariant suite for redo-replay equivalence (§V, physical
// replication).
//
// A source DN runs a seeded workload (upserts, deletes, aborts, the
// occasional prepare/commit pair) against a redo-backed engine. The redo
// stream is then shipped to a mirror RedoApplier the way a flaky
// replication channel would: in windows that overlap, duplicate, and
// re-deliver earlier records (at-least-once delivery). The mirror also
// restarts mid-replay — a fresh catalog + applier that re-replays from
// the beginning — simulating a read replica crash.
//
// Invariants:
//
//   R1  equivalence: after all windows are delivered, the mirror's
//       committed state equals the source's at the same snapshot;
//   R2  idempotence: overlapping windows are deduplicated by the
//       applied_through watermark (records_skipped > 0), never
//       double-applied;
//   R3  restart equivalence: a second, single-pass replay from scratch
//       agrees with the incrementally-fed mirror.
//
// A failing seed is replayable with POLARX_CHAOS_SEED=<seed>.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/clock/hlc.h"
#include "src/common/rng.h"
#include "src/replication/redo_applier.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/key_codec.h"
#include "src/storage/mvcc.h"
#include "src/txn/engine.h"
#include "tests/chaos/chaos_util.h"

namespace polarx {
namespace {

constexpr TableId kTable = 1;
constexpr int kKeys = 40;

Schema KvSchema() {
  return Schema({{"id", ValueType::kInt64, false},
                 {"val", ValueType::kInt64, false}},
                {0});
}

/// Committed row contents visible at `snapshot`, keyed by primary key.
std::map<int64_t, int64_t> Visible(TableCatalog* catalog, Timestamp snapshot) {
  std::map<int64_t, int64_t> out;
  TableStore* table = catalog->FindTable(kTable);
  table->rows().ScanAll([&](const EncodedKey&, const VersionPtr& head) {
    const Version* v = LatestVisible(head, snapshot);
    if (v != nullptr && !v->deleted) {
      out[std::get<int64_t>(v->row[0])] = std::get<int64_t>(v->row[1]);
    }
    return true;
  });
  return out;
}

void RunRedoChaos(uint64_t seed) {
  Rng rng(seed);

  // --- Source DN: seeded workload over a redo-backed engine. ---
  uint64_t now_ms = 1000;
  TableCatalog catalog;
  catalog.CreateTable(kTable, "kv", KvSchema(), 0);
  Hlc hlc([&now_ms] { return now_ms; });
  RedoLog log;
  CountingPageStore store;
  BufferPool pool(&store);
  TxnEngine engine(1, &catalog, &hlc, &log, &pool);

  int committed = 0;
  for (int step = 0; step < 150; ++step) {
    now_ms += rng.Uniform(3);
    TxnId txn = engine.Begin();
    int writes = 1 + int(rng.Uniform(4));
    bool ok = true;
    for (int w = 0; w < writes && ok; ++w) {
      int64_t key = int64_t(rng.Uniform(kKeys));
      if (rng.Bernoulli(0.2)) {
        // Deleting a missing row is a no-op failure; ignore the status.
        engine.Delete(txn, kTable, EncodeKey({key}));
      } else {
        ok = engine.Upsert(txn, kTable, {key, int64_t(rng.Uniform(1000))})
                 .ok();
      }
    }
    if (!ok || rng.Bernoulli(0.15)) {
      engine.Abort(txn);
      continue;
    }
    if (rng.Bernoulli(0.3)) {
      // Distributed-style commit: explicit prepare, then commit at a
      // timestamp >= prepare_ts (what a 2PC coordinator would pick).
      auto prep = engine.Prepare(txn);
      ASSERT_TRUE(prep.ok());
      ASSERT_TRUE(engine.Commit(txn, prep.value()).ok());
    } else {
      ASSERT_TRUE(engine.CommitLocal(txn).ok());
    }
    ++committed;
  }
  ASSERT_GT(committed, 0);

  // The full redo stream; each record carries its own LSN once parsed.
  std::vector<RedoRecord> records;
  ASSERT_TRUE(
      log.ReadRecords(log.purged_before(), log.current_lsn(), &records).ok());
  ASSERT_FALSE(records.empty());

  // --- Mirror: at-least-once delivery in overlapping windows. ---
  auto mirror = std::make_unique<TableCatalog>();
  mirror->CreateTable(kTable, "kv", KvSchema(), 0);
  auto applier = std::make_unique<RedoApplier>(mirror.get());
  int restarts = 0;
  uint64_t total_skipped = 0;
  size_t shipped_through = 0;  // index of first record not yet delivered
  while (shipped_through < records.size()) {
    // Each window starts at or before the frontier (re-delivering up to 8
    // already-shipped records) and extends past it by 1..12 records.
    size_t rewind = std::min(size_t(rng.Uniform(9)), shipped_through);
    size_t begin = shipped_through - rewind;
    size_t end =
        std::min(records.size(), shipped_through + 1 + rng.Uniform(12));
    std::vector<RedoRecord> window(records.begin() + begin,
                                   records.begin() + end);
    if (rng.Bernoulli(0.2)) {
      // Duplicate the window wholesale: the channel re-sent a batch.
      window.insert(window.end(), records.begin() + begin,
                    records.begin() + end);
    }
    ASSERT_TRUE(applier->ApplyAll(window).ok());
    total_skipped += applier->records_skipped();
    shipped_through = end;

    if (rng.Bernoulli(0.1)) {
      // Mirror crash: throw away the catalog and applier, re-replay the
      // prefix delivered so far from scratch, then keep streaming.
      ++restarts;
      mirror = std::make_unique<TableCatalog>();
      mirror->CreateTable(kTable, "kv", KvSchema(), 0);
      applier = std::make_unique<RedoApplier>(mirror.get());
      std::vector<RedoRecord> prefix(records.begin(),
                                     records.begin() + shipped_through);
      ASSERT_TRUE(applier->ApplyAll(prefix).ok());
    }
  }
  total_skipped += applier->records_skipped();

  // R2: the overlapping windows must actually have forced deduplication.
  EXPECT_GT(total_skipped, 0u)
      << "no overlap was ever delivered; the sweep is not testing "
         "at-least-once semantics";

  // R1: mirror equals source at a snapshot covering every commit.
  now_ms += 10;
  Timestamp snapshot = hlc.Now();
  std::map<int64_t, int64_t> source_state = Visible(&catalog, snapshot);
  EXPECT_EQ(Visible(mirror.get(), snapshot), source_state)
      << "mirror diverged from source after windowed replay";

  // R3: one clean end-to-end replay agrees with the incremental mirror.
  TableCatalog fresh;
  fresh.CreateTable(kTable, "kv", KvSchema(), 0);
  RedoApplier clean(&fresh);
  ASSERT_TRUE(clean.ApplyAll(records).ok());
  EXPECT_EQ(clean.records_skipped(), 0u);
  EXPECT_EQ(Visible(&fresh, snapshot), source_state)
      << "single-pass replay diverged from the source";
  EXPECT_EQ(clean.txns_committed(), uint64_t(committed));
}

TEST(ChaosRedoTest, ReplayEquivalenceSweep) {
  chaos::SeedSweep(50, RunRedoChaos);
}

}  // namespace
}  // namespace polarx
