// Tests for the TPC-H-lite generator and all 22 query plans: generator
// invariants, per-query sanity/spot checks, and the two central execution
// equivalences — (a) MPP results == single-node results, (b) column-index
// results == row-store results — which Fig. 10's comparisons rest on.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/exec/expr.h"
#include "src/exec/runtime_filter.h"
#include "src/workload/tpch.h"

namespace polarx::tpch {
namespace {

class TpchFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TpchConfig cfg;
    cfg.scale = 0.002;  // ~3000 orders, ~12000 lineitems
    cfg.shards_per_table = 4;
    db_ = new TpchDb(cfg);
    db_->Load();
    for (int t = 0; t < kNumTables; ++t) {
      db_->BuildColumnIndex(static_cast<Table>(t));
    }
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static TpchDb* db_;
};

TpchDb* TpchFixture::db_ = nullptr;

TEST_F(TpchFixture, GeneratorCardinalities) {
  EXPECT_EQ(db_->row_count(kRegion), 5u);
  EXPECT_EQ(db_->row_count(kNation), 25u);
  EXPECT_EQ(db_->row_count(kPartSupp), db_->row_count(kPart) * 4);
  EXPECT_GT(db_->row_count(kOrders), 1000u);
  // ~4 lineitems per order.
  double ratio = double(db_->row_count(kLineItem)) /
                 double(db_->row_count(kOrders));
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 5.5);
}

TEST_F(TpchFixture, DataShardedEvenly) {
  for (Table t : {kOrders, kLineItem, kCustomer}) {
    uint64_t total = 0;
    uint64_t min_rows = UINT64_MAX, max_rows = 0;
    for (TableStore* shard : db_->shards(t)) {
      uint64_t n = shard->ApproxRows();
      total += n;
      min_rows = std::min(min_rows, n);
      max_rows = std::max(max_rows, n);
    }
    EXPECT_EQ(total, db_->row_count(t));
    EXPECT_LT(double(max_rows - min_rows) / double(max_rows), 0.25)
        << TableName(t) << " shards should be balanced";
  }
}

TEST_F(TpchFixture, ColumnIndexMatchesRowCount) {
  for (Table t : {kLineItem, kOrders, kPart}) {
    ASSERT_NE(db_->column_index(t), nullptr);
    EXPECT_EQ(db_->column_index(t)->live_rows(db_->load_ts()),
              db_->row_count(t))
        << TableName(t);
  }
}

TEST_F(TpchFixture, AllQueriesRunSingleNode) {
  for (int q = 1; q <= 22; ++q) {
    auto rows = RunQuerySingleNode(q, *db_, db_->load_ts());
    ASSERT_TRUE(rows.ok()) << "Q" << q << ": " << rows.status().ToString();
    // Every query returns at least one row at this scale except possibly
    // highly selective ones; just require successful execution plus sane
    // arity.
    if (!rows->empty()) {
      EXPECT_GE((*rows)[0].size(), 1u) << "Q" << q;
    }
  }
}

TEST_F(TpchFixture, Q1AggregatesEntireLineitemTable) {
  auto rows = RunQuerySingleNode(1, *db_, db_->load_ts());
  ASSERT_TRUE(rows.ok());
  // Groups: (A,F), (N,F)?, (N,O), (R,F) — at least 3 appear at small SF.
  EXPECT_GE(rows->size(), 3u);
  EXPECT_LE(rows->size(), 4u);
  int64_t total_count = 0;
  for (const auto& r : *rows) {
    ASSERT_EQ(r.size(), 10u);  // rf, ls, 4 sums, 3 avgs, count
    total_count += std::get<int64_t>(r[9]);
    // avg_qty must be consistent with sum_qty / count.
    double sum_qty = std::get<double>(r[2]);
    double avg_qty = std::get<double>(r[6]);
    int64_t n = std::get<int64_t>(r[9]);
    EXPECT_NEAR(avg_qty, sum_qty / double(n), 1e-6);
  }
  // The filter shipdate <= 1998-09-02 keeps nearly all rows.
  EXPECT_GT(total_count, int64_t(db_->row_count(kLineItem) * 9 / 10));
}

TEST_F(TpchFixture, Q1MatchesManualComputation) {
  // Recompute one aggregate by scanning directly.
  double expect_revenue = 0;  // sum(ext*(1-disc)) over all (rf,ls)
  int64_t limit = Days(1998, 9, 2);
  for (TableStore* shard : db_->shards(kLineItem)) {
    shard->rows().ScanAll([&](const EncodedKey&, const VersionPtr& head) {
      const Version* v = LatestVisible(head, db_->load_ts());
      if (v != nullptr && std::get<int64_t>(v->row[col::l_shipdate]) <= limit) {
        expect_revenue += std::get<double>(v->row[col::l_extendedprice]) *
                          (1 - std::get<double>(v->row[col::l_discount]));
      }
      return true;
    });
  }
  auto rows = RunQuerySingleNode(1, *db_, db_->load_ts());
  ASSERT_TRUE(rows.ok());
  double got = 0;
  for (const auto& r : *rows) got += std::get<double>(r[4]);
  EXPECT_NEAR(got, expect_revenue, expect_revenue * 1e-9);
}

TEST_F(TpchFixture, Q6MatchesManualComputation) {
  double expected = 0;
  int64_t lo = Days(1994, 1, 1), hi = Days(1995, 1, 1);
  for (TableStore* shard : db_->shards(kLineItem)) {
    shard->rows().ScanAll([&](const EncodedKey&, const VersionPtr& head) {
      const Version* v = LatestVisible(head, db_->load_ts());
      if (v == nullptr) return true;
      int64_t ship = std::get<int64_t>(v->row[col::l_shipdate]);
      double disc = std::get<double>(v->row[col::l_discount]);
      double qty = std::get<double>(v->row[col::l_quantity]);
      if (ship >= lo && ship < hi && disc >= 0.05 && disc <= 0.07 &&
          qty < 24) {
        expected += std::get<double>(v->row[col::l_extendedprice]) * disc;
      }
      return true;
    });
  }
  auto rows = RunQuerySingleNode(6, *db_, db_->load_ts());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_NEAR(std::get<double>((*rows)[0][0]), expected,
              std::abs(expected) * 1e-9 + 1e-9);
}

TEST_F(TpchFixture, Q3ReturnsTop10SortedByRevenue) {
  auto rows = RunQuerySingleNode(3, *db_, db_->load_ts());
  ASSERT_TRUE(rows.ok());
  ASSERT_LE(rows->size(), 10u);
  double prev = 1e300;
  for (const auto& r : *rows) {
    double rev = std::get<double>(r[1]);
    EXPECT_LE(rev, prev);
    prev = rev;
  }
}

TEST_F(TpchFixture, Q4CountsPerPriority) {
  auto rows = RunQuerySingleNode(4, *db_, db_->load_ts());
  ASSERT_TRUE(rows.ok());
  EXPECT_LE(rows->size(), 5u);
  std::set<std::string> prios;
  for (const auto& r : *rows) {
    prios.insert(std::get<std::string>(r[0]));
    EXPECT_GT(std::get<int64_t>(r[1]), 0);
  }
  EXPECT_EQ(prios.size(), rows->size()) << "priorities must be distinct";
}

TEST_F(TpchFixture, Q13IncludesZeroOrderCustomers) {
  auto rows = RunQuerySingleNode(13, *db_, db_->load_ts());
  ASSERT_TRUE(rows.ok());
  int64_t customers_counted = 0;
  bool has_zero_bucket = false;
  for (const auto& r : *rows) {
    customers_counted += std::get<int64_t>(r[1]);
    if (std::get<int64_t>(r[0]) == 0) has_zero_bucket = true;
  }
  EXPECT_EQ(customers_counted, int64_t(db_->row_count(kCustomer)))
      << "every customer appears exactly once in the distribution";
  EXPECT_TRUE(has_zero_bucket) << "some customers have no orders";
}

TEST_F(TpchFixture, Q15FindsTheMaximumRevenueSupplier) {
  auto rows = RunQuerySingleNode(15, *db_, db_->load_ts());
  ASSERT_TRUE(rows.ok());
  ASSERT_GE(rows->size(), 1u);
  // Verify against a manual max computation.
  std::map<int64_t, double> revenue;
  int64_t lo = Days(1996, 1, 1), hi = Days(1996, 4, 1);
  for (TableStore* shard : db_->shards(kLineItem)) {
    shard->rows().ScanAll([&](const EncodedKey&, const VersionPtr& head) {
      const Version* v = LatestVisible(head, db_->load_ts());
      if (v == nullptr) return true;
      int64_t ship = std::get<int64_t>(v->row[col::l_shipdate]);
      if (ship >= lo && ship < hi) {
        revenue[std::get<int64_t>(v->row[col::l_suppkey])] +=
            std::get<double>(v->row[col::l_extendedprice]) *
            (1 - std::get<double>(v->row[col::l_discount]));
      }
      return true;
    });
  }
  double max_rev = 0;
  for (auto& [sk, rev] : revenue) max_rev = std::max(max_rev, rev);
  EXPECT_NEAR(std::get<double>((*rows)[0][4]), max_rev, max_rev * 1e-9);
}

TEST_F(TpchFixture, Q18OrdersExceedQuantityThreshold) {
  auto rows = RunQuerySingleNode(18, *db_, db_->load_ts());
  ASSERT_TRUE(rows.ok());
  for (const auto& r : *rows) {
    EXPECT_GT(std::get<double>(r[5]), 300.0);
  }
}

TEST_F(TpchFixture, Q22CountsNonBuyers) {
  auto rows = RunQuerySingleNode(22, *db_, db_->load_ts());
  ASSERT_TRUE(rows.ok());
  for (const auto& r : *rows) {
    // (code, count, sum acctbal): balances above the positive average.
    EXPECT_GT(std::get<int64_t>(r[1]), 0);
    EXPECT_GT(std::get<double>(r[2]), 0.0);
  }
}

// The two equivalences Fig. 10 relies on.

double RowKey(const Row& r) {
  // crude projection-insensitive fingerprint for set comparison
  double h = 0;
  for (const auto& v : r) {
    if (const auto* i = std::get_if<int64_t>(&v)) h += double(*i) * 1.37;
    if (const auto* d = std::get_if<double>(&v)) h += *d;
    if (const auto* s = std::get_if<std::string>(&v)) h += double(s->size());
  }
  return h;
}

double SetFingerprint(const std::vector<Row>& rows) {
  double sum = 0;
  for (const auto& r : rows) sum += RowKey(r);
  return sum;
}

class QuerySweep : public TpchFixture,
                   public ::testing::WithParamInterface<int> {};

TEST_P(QuerySweep, MppMatchesSingleNode) {
  int q = GetParam();
  auto single = RunQuerySingleNode(q, *db_, db_->load_ts());
  ASSERT_TRUE(single.ok()) << single.status().ToString();
  ThreadPool pool(4);
  auto mpp = RunQueryMpp(q, *db_, db_->load_ts(), 4, &pool);
  ASSERT_TRUE(mpp.ok()) << mpp.status().ToString();
  ASSERT_EQ(mpp->size(), single->size()) << "Q" << q;
  EXPECT_NEAR(SetFingerprint(*mpp), SetFingerprint(*single),
              std::abs(SetFingerprint(*single)) * 1e-6 + 1e-6)
      << "Q" << q;
}

TEST_P(QuerySweep, ColumnIndexMatchesRowStore) {
  int q = GetParam();
  auto row_store = RunQuerySingleNode(q, *db_, db_->load_ts(), false);
  ASSERT_TRUE(row_store.ok());
  auto col_store = RunQuerySingleNode(q, *db_, db_->load_ts(), true);
  ASSERT_TRUE(col_store.ok()) << col_store.status().ToString();
  ASSERT_EQ(col_store->size(), row_store->size()) << "Q" << q;
  EXPECT_NEAR(SetFingerprint(*col_store), SetFingerprint(*row_store),
              std::abs(SetFingerprint(*row_store)) * 1e-6 + 1e-6)
      << "Q" << q;
}

// The full execution grid must be result-identical: runtime filters may
// only shrink intermediates (false positives pass through the exact join;
// false negatives are forbidden), and ColumnHashJoinOp must be a drop-in
// for ColumnScanOp + HashJoinOp. Also covers MPP with filters disabled.
TEST_P(QuerySweep, FilterJoinGridMatchesBaseline) {
  int q = GetParam();
  auto baseline = RunQuerySingleNode(q, *db_, db_->load_ts(), false);
  ASSERT_TRUE(baseline.ok());
  double want = SetFingerprint(*baseline);
  double tol = std::abs(want) * 1e-6 + 1e-6;
  for (bool rf : {false, true}) {
    for (bool cj : {false, true}) {
      ScanOptions o;
      o.use_column_index = true;
      o.column_join = cj;
      o.runtime_filters = rf;
      auto got = RunQuerySingleNode(q, *db_, db_->load_ts(), o);
      ASSERT_TRUE(got.ok()) << "Q" << q << " rf=" << rf << " cj=" << cj
                            << ": " << got.status().ToString();
      ASSERT_EQ(got->size(), baseline->size())
          << "Q" << q << " rf=" << rf << " cj=" << cj;
      EXPECT_NEAR(SetFingerprint(*got), want, tol)
          << "Q" << q << " rf=" << rf << " cj=" << cj;
    }
  }
  ScanOptions row_no_rf;
  row_no_rf.runtime_filters = false;
  ThreadPool pool(4);
  auto mpp = RunQueryMpp(q, *db_, db_->load_ts(), 4, &pool, row_no_rf);
  ASSERT_TRUE(mpp.ok()) << mpp.status().ToString();
  ASSERT_EQ(mpp->size(), baseline->size()) << "Q" << q;
  EXPECT_NEAR(SetFingerprint(*mpp), want, tol) << "Q" << q;
}

// The ablation the bench reports: with filters on, Q8's small build side
// (filtered part) prunes most lineitem probes before the join; with
// filters off nothing is pruned and every scanned row reaches a probe.
TEST_F(TpchFixture, RuntimeFiltersPruneQ8ProbeRows) {
  ScanOptions on, off;
  on.use_column_index = off.use_column_index = true;
  on.runtime_filters = true;
  off.runtime_filters = false;

  ResetRuntimeFilterStats();
  auto with_filters = RunQuerySingleNode(8, *db_, db_->load_ts(), on);
  ASSERT_TRUE(with_filters.ok());
  RuntimeFilterStats s_on = ReadRuntimeFilterStats();

  ResetRuntimeFilterStats();
  auto without = RunQuerySingleNode(8, *db_, db_->load_ts(), off);
  ASSERT_TRUE(without.ok());
  RuntimeFilterStats s_off = ReadRuntimeFilterStats();

  EXPECT_EQ(with_filters->size(), without->size());
  EXPECT_GT(s_on.scan_rows_tested, 0u);
  EXPECT_GT(s_on.scan_rows_dropped, 0u);
  EXPECT_EQ(s_off.scan_rows_dropped, 0u);
  EXPECT_LT(s_on.join_probe_rows, s_off.join_probe_rows)
      << "filters must shrink the rows reaching join probes";
}

// Same property on the row-store path: the bloom filter published by
// HashJoinOp's build must prune TableScanOp output without changing the
// result (Q3 attaches one on the orders-customer build).
TEST_F(TpchFixture, RuntimeFiltersPruneRowStoreScans) {
  ScanOptions on, off;
  on.runtime_filters = true;
  off.runtime_filters = false;

  ResetRuntimeFilterStats();
  auto with_filters = RunQuerySingleNode(3, *db_, db_->load_ts(), on);
  ASSERT_TRUE(with_filters.ok());
  RuntimeFilterStats s_on = ReadRuntimeFilterStats();

  ResetRuntimeFilterStats();
  auto without = RunQuerySingleNode(3, *db_, db_->load_ts(), off);
  ASSERT_TRUE(without.ok());
  RuntimeFilterStats s_off = ReadRuntimeFilterStats();

  EXPECT_EQ(SetFingerprint(*with_filters), SetFingerprint(*without));
  EXPECT_GT(s_on.scan_rows_dropped, 0u);
  EXPECT_LT(s_on.join_probe_rows, s_off.join_probe_rows);
}

INSTANTIATE_TEST_SUITE_P(AllQueries, QuerySweep, ::testing::Range(1, 23),
                         [](const auto& info) {
                           return "Q" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace polarx::tpch
