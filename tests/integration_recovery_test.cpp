// Integration tests for redo-based recovery and the full storage spine:
// a DN's state must be reconstructible from its redo log alone (crash
// recovery), including aborted-transaction cleanup, and checkpoint/purge
// interactions with the buffer pool must preserve that property.
#include <gtest/gtest.h>

#include "src/clock/hlc.h"
#include "src/common/rng.h"
#include "src/replication/redo_applier.h"
#include "src/storage/buffer_pool.h"
#include "src/txn/engine.h"

namespace polarx {
namespace {

constexpr TableId kTable = 1;

Schema KvSchema() {
  return Schema({{"id", ValueType::kInt64, false},
                 {"v", ValueType::kString, true}},
                {0});
}

struct Node {
  uint64_t now_ms = 1000;
  TableCatalog catalog;
  Hlc hlc;
  RedoLog log;
  CountingPageStore store;
  BufferPool pool;
  TxnEngine engine;

  Node()
      : hlc([this] { return now_ms; }),
        pool(&store),
        engine(1, &catalog, &hlc, &log, &pool) {
    catalog.CreateTable(kTable, "kv", KvSchema(), 0);
  }
};

/// Replays a node's redo log into a fresh catalog (the crash-recovery
/// path) and returns it.
std::unique_ptr<TableCatalog> Recover(const RedoLog& log) {
  auto catalog = std::make_unique<TableCatalog>();
  catalog->CreateTable(kTable, "kv", KvSchema(), 0);
  RedoApplier applier(catalog.get());
  std::vector<RedoRecord> records;
  EXPECT_TRUE(
      log.ReadRecords(log.purged_before(), log.current_lsn(), &records)
          .ok());
  EXPECT_TRUE(applier.ApplyAll(records).ok());
  return catalog;
}

/// Compares the committed-visible contents of two catalogs at a snapshot.
void ExpectSameContents(TableCatalog* a, TableCatalog* b,
                        Timestamp snapshot) {
  TableStore* ta = a->FindTable(kTable);
  TableStore* tb = b->FindTable(kTable);
  std::map<EncodedKey, Row> rows_a, rows_b;
  auto collect = [snapshot](TableStore* t, std::map<EncodedKey, Row>* out) {
    t->rows().ScanAll([&](const EncodedKey& key, const VersionPtr& head) {
      const Version* v = LatestVisible(head, snapshot);
      if (v != nullptr && !v->deleted) (*out)[key] = v->row;
      return true;
    });
  };
  collect(ta, &rows_a);
  collect(tb, &rows_b);
  ASSERT_EQ(rows_a.size(), rows_b.size());
  for (const auto& [key, row] : rows_a) {
    auto it = rows_b.find(key);
    ASSERT_NE(it, rows_b.end());
    ASSERT_EQ(row.size(), it->second.size());
    for (size_t c = 0; c < row.size(); ++c) {
      EXPECT_EQ(CompareValues(row[c], it->second[c]), 0);
    }
  }
}

TEST(RecoveryTest, RandomHistoryReplaysExactly) {
  Node node;
  Rng rng(123);
  for (int i = 0; i < 500; ++i) {
    node.now_ms += 1;
    TxnId txn = node.engine.Begin();
    int ops = 1 + int(rng.Uniform(4));
    bool ok = true;
    for (int o = 0; o < ops && ok; ++o) {
      int64_t key = int64_t(rng.Uniform(100));
      if (rng.Bernoulli(0.2)) {
        ok = node.engine.Delete(txn, kTable, EncodeKey({key})).ok();
      } else {
        ok = node.engine
                 .Upsert(txn, kTable, {key, rng.AlphaString(8)})
                 .ok();
      }
    }
    if (!ok || rng.Bernoulli(0.15)) {
      node.engine.Abort(txn);  // aborted txns must not survive recovery
    } else {
      node.engine.CommitLocal(txn);
    }
  }
  node.log.MarkFlushed(node.log.current_lsn());

  auto recovered = Recover(node.log);
  node.now_ms += 1;
  ExpectSameContents(&node.catalog, recovered.get(), node.hlc.Now());
}

TEST(RecoveryTest, RecoveredSnapshotsMatchAtEveryCommit) {
  Node node;
  std::vector<Timestamp> commit_points;
  for (int i = 0; i < 20; ++i) {
    node.now_ms += 1;
    TxnId txn = node.engine.Begin();
    ASSERT_TRUE(node.engine
                    .Upsert(txn, kTable,
                            {int64_t(i % 5), "v" + std::to_string(i)})
                    .ok());
    auto cts = node.engine.CommitLocal(txn);
    ASSERT_TRUE(cts.ok());
    commit_points.push_back(*cts);
  }
  auto recovered = Recover(node.log);
  // Time travel: every historical snapshot is identical on both sides.
  for (Timestamp ts : commit_points) {
    ExpectSameContents(&node.catalog, recovered.get(), ts);
  }
}

TEST(RecoveryTest, CheckpointPurgeKeepsRecoverableSuffix) {
  Node node;
  // Phase 1: writes that will be checkpointed away.
  for (int i = 0; i < 50; ++i) {
    node.now_ms += 1;
    TxnId txn = node.engine.Begin();
    ASSERT_TRUE(
        node.engine.Upsert(txn, kTable, {int64_t(i), std::string("old")})
            .ok());
    ASSERT_TRUE(node.engine.CommitLocal(txn).ok());
  }
  // Checkpoint: flush all dirty pages, then purge the consumed redo.
  node.log.MarkFlushed(node.log.current_lsn());
  node.pool.FlushUpTo(node.log.current_lsn());
  ASSERT_EQ(node.pool.dirty_pages(), 0u);
  Lsn checkpoint = node.log.current_lsn();
  node.log.PurgeBefore(checkpoint);

  // Phase 2: more writes after the checkpoint.
  for (int i = 100; i < 120; ++i) {
    node.now_ms += 1;
    TxnId txn = node.engine.Begin();
    ASSERT_TRUE(
        node.engine.Upsert(txn, kTable, {int64_t(i), std::string("new")})
            .ok());
    ASSERT_TRUE(node.engine.CommitLocal(txn).ok());
  }
  // Recovery from the checkpoint replays only the suffix: phase-2 rows
  // present, phase-1 rows come from the (not-modeled-here) page images.
  auto recovered = Recover(node.log);
  TableStore* t = recovered->FindTable(kTable);
  node.now_ms += 1;
  Timestamp snap = node.hlc.Now();
  int new_rows = 0, old_rows = 0;
  t->rows().ScanAll([&](const EncodedKey&, const VersionPtr& head) {
    const Version* v = LatestVisible(head, snap);
    if (v != nullptr) {
      (std::get<std::string>(v->row[1]) == "new" ? new_rows : old_rows)++;
    }
    return true;
  });
  EXPECT_EQ(new_rows, 20);
  EXPECT_EQ(old_rows, 0) << "pre-checkpoint redo is gone (pages hold it)";
  // And the pre-checkpoint range is unreadable, as it must be.
  std::vector<RedoRecord> records;
  EXPECT_FALSE(node.log.ReadRecords(1, checkpoint, &records).ok());
}

TEST(RecoveryTest, MinDirtyLsnBoundsCheckpoint) {
  // The redo needed for recovery is exactly [min dirty oldest-mod, end):
  // purging beyond MinDirtyLsn() would lose updates not yet in pages.
  Node node;
  for (int i = 0; i < 10; ++i) {
    node.now_ms += 1;
    TxnId txn = node.engine.Begin();
    ASSERT_TRUE(
        node.engine.Upsert(txn, kTable, {int64_t(i), std::string("x")})
            .ok());
    ASSERT_TRUE(node.engine.CommitLocal(txn).ok());
  }
  Lsn min_dirty = node.pool.MinDirtyLsn();
  ASSERT_LT(min_dirty, kMaxLsn);
  EXPECT_LT(min_dirty, node.log.current_lsn());
  // Flush half the LSN space; the bound advances but stays <= current.
  Lsn half = min_dirty + (node.log.current_lsn() - min_dirty) / 2;
  node.pool.FlushUpTo(half);
  Lsn after = node.pool.MinDirtyLsn();
  EXPECT_GE(after, min_dirty);
}

}  // namespace
}  // namespace polarx
