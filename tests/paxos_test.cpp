// Tests for Paxos-with-leader-lease redo replication (§III): DLSN safety,
// asynchronous commit, batching/pipelining, leader election, old-leader
// cleanup, logger role, and DC-disaster survival.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/consensus/paxos.h"
#include "src/sim/network.h"
#include "src/storage/key_codec.h"

namespace polarx {
namespace {

RedoRecord TestRecord(TxnId txn, int64_t id) {
  RedoRecord rec;
  rec.type = RedoType::kInsert;
  rec.txn_id = txn;
  rec.table_id = 1;
  rec.key = EncodeKey({id});
  rec.row = {id, std::string("value-") + std::to_string(id)};
  return rec;
}

/// A 3-DC deployment: leader in DC0, follower in DC1, follower or logger in
/// DC2, as in the paper's production topology.
struct GroupFixture {
  sim::Scheduler sched;
  sim::Network net;
  std::vector<std::unique_ptr<RedoLog>> logs;
  std::unique_ptr<PaxosGroup> group;
  PaxosMember* leader = nullptr;
  PaxosMember* f1 = nullptr;
  PaxosMember* f2 = nullptr;

  explicit GroupFixture(PaxosConfig cfg = {}, bool third_is_logger = false)
      : net(&sched, [] {
          sim::NetworkConfig nc;
          nc.jitter = 0;
          return nc;
        }()) {
    group = std::make_unique<PaxosGroup>(&net, cfg);
    for (int i = 0; i < 3; ++i) logs.push_back(std::make_unique<RedoLog>());
    NodeId n0 = net.AddNode(0, "dn-leader");
    NodeId n1 = net.AddNode(1, "dn-f1");
    NodeId n2 = net.AddNode(2, third_is_logger ? "dn-logger" : "dn-f2");
    leader = group->AddMember(n0, PaxosRole::kLeader, logs[0].get());
    f1 = group->AddMember(n1, PaxosRole::kFollower, logs[1].get());
    f2 = group->AddMember(
        n2, third_is_logger ? PaxosRole::kLogger : PaxosRole::kFollower,
        logs[2].get());
    group->Start();
  }

  void RunFor(sim::SimTime us) { sched.RunUntil(sched.Now() + us); }
};

TEST(PaxosTest, ReplicatesToFollowersAndAdvancesDlsn) {
  GroupFixture g;
  MtrHandle h = g.leader->Append({TestRecord(1, 1), TestRecord(1, 2)});
  g.RunFor(50 * sim::kUsPerMs);
  EXPECT_GE(g.leader->dlsn(), h.end_lsn);
  EXPECT_EQ(g.f1->log()->current_lsn(), g.leader->log()->current_lsn());
  EXPECT_EQ(g.f2->log()->current_lsn(), g.leader->log()->current_lsn());
  EXPECT_GE(g.f1->dlsn(), h.end_lsn);
}

TEST(PaxosTest, FollowerLogBytesIdenticalToLeader) {
  GroupFixture g;
  for (int i = 0; i < 50; ++i) g.leader->Append({TestRecord(1, i)});
  g.RunFor(50 * sim::kUsPerMs);
  std::string leader_bytes, f1_bytes;
  g.leader->log()->ReadBytes(1, g.leader->log()->current_lsn(),
                             &leader_bytes);
  g.f1->log()->ReadBytes(1, g.f1->log()->current_lsn(), &f1_bytes);
  EXPECT_EQ(leader_bytes, f1_bytes);
}

TEST(PaxosTest, DlsnRequiresMajorityNotAll) {
  GroupFixture g;
  g.RunFor(5 * sim::kUsPerMs);
  g.net.SetNodeUp(g.f2->node(), false);  // one of three down
  MtrHandle h = g.leader->Append({TestRecord(1, 1)});
  g.RunFor(20 * sim::kUsPerMs);
  EXPECT_GE(g.leader->dlsn(), h.end_lsn) << "leader+f1 are a majority";
  EXPECT_LT(g.f2->log()->current_lsn(), h.end_lsn);
}

TEST(PaxosTest, NoDlsnAdvanceWithoutMajority) {
  GroupFixture g;
  g.RunFor(5 * sim::kUsPerMs);
  Lsn before = g.leader->dlsn();
  g.net.SetNodeUp(g.f1->node(), false);
  g.net.SetNodeUp(g.f2->node(), false);
  MtrHandle h = g.leader->Append({TestRecord(1, 1)});
  g.RunFor(50 * sim::kUsPerMs);
  EXPECT_LT(g.leader->dlsn(), h.end_lsn);
  EXPECT_GE(g.leader->dlsn(), before);
}

TEST(PaxosTest, AsyncCommitterFiresOnDurability) {
  GroupFixture g;
  AsyncCommitter committer(g.leader);
  std::vector<int> completed;
  MtrHandle h1 = g.leader->Append({TestRecord(1, 1)});
  committer.Submit(h1.end_lsn, [&] { completed.push_back(1); });
  MtrHandle h2 = g.leader->Append({TestRecord(2, 2)});
  committer.Submit(h2.end_lsn, [&] { completed.push_back(2); });
  EXPECT_TRUE(completed.empty()) << "must not complete before majority ack";
  g.RunFor(20 * sim::kUsPerMs);
  EXPECT_EQ(completed, (std::vector<int>{1, 2}));
  EXPECT_EQ(committer.pending(), 0u);
}

TEST(PaxosTest, AsyncCommitterImmediateWhenAlreadyDurable) {
  GroupFixture g;
  MtrHandle h = g.leader->Append({TestRecord(1, 1)});
  g.RunFor(20 * sim::kUsPerMs);
  AsyncCommitter committer(g.leader);
  bool fired = false;
  committer.Submit(h.end_lsn, [&] { fired = true; });
  EXPECT_TRUE(fired);
}

TEST(PaxosTest, FollowersApplyOnlyUpToDlsn) {
  GroupFixture g;
  std::vector<TxnId> applied;
  g.f1->SetApplyFn([&](const RedoRecord& rec) {
    applied.push_back(rec.txn_id);
  });
  g.leader->Append({TestRecord(7, 1)});
  g.RunFor(50 * sim::kUsPerMs);
  ASSERT_EQ(applied.size(), 1u);
  EXPECT_EQ(applied[0], 7u);
  EXPECT_LE(g.f1->applied_lsn(), g.f1->dlsn());
}

TEST(PaxosTest, LargeMtrBatchedInto16KbFrames) {
  PaxosConfig cfg;
  cfg.max_batch_bytes = 16 * 1024;
  GroupFixture g(cfg);
  // ~100 records of ~500 bytes: several frames needed.
  std::vector<RedoRecord> records;
  for (int i = 0; i < 100; ++i) {
    RedoRecord rec = TestRecord(1, i);
    rec.row[1] = std::string(400, 'x');
    records.push_back(rec);
  }
  uint64_t frames_before = g.leader->frames_sent();
  MtrHandle h = g.leader->Append(records);
  g.RunFor(50 * sim::kUsPerMs);
  uint64_t frames = g.leader->frames_sent() - frames_before;
  size_t total_bytes = h.end_lsn - h.start_lsn;
  EXPECT_GE(frames, 2 * (total_bytes / (16 * 1024)));  // 2 followers
  EXPECT_GE(g.leader->dlsn(), h.end_lsn);
  // Frame boundaries never split a record: followers can parse everything.
  std::vector<RedoRecord> parsed;
  ASSERT_TRUE(
      g.f1->log()->ReadRecords(1, g.f1->log()->current_lsn(), &parsed).ok());
  EXPECT_EQ(parsed.size(), 100u);
}

TEST(PaxosTest, PipeliningBeatsStopAndWait) {
  // With ~1ms RTT, pipelined replication of N MTRs should converge much
  // faster than one-frame-at-a-time.
  auto run = [](bool pipelining) {
    PaxosConfig cfg;
    cfg.pipelining = pipelining;
    cfg.max_batch_bytes = 256;  // force many frames
    GroupFixture g(cfg);
    for (int i = 0; i < 50; ++i) g.leader->Append({TestRecord(1, i)});
    Lsn target = g.leader->log()->current_lsn();
    while (g.leader->dlsn() < target && g.sched.PendingEvents() > 0) {
      g.sched.Step();
    }
    return g.sched.Now();
  };
  sim::SimTime pipelined = run(true);
  sim::SimTime stop_and_wait = run(false);
  EXPECT_LT(pipelined * 3, stop_and_wait)
      << "pipelining must hide propagation delay";
}

TEST(PaxosTest, ElectsNewLeaderAfterLeaderFailure) {
  GroupFixture g;
  MtrHandle h = g.leader->Append({TestRecord(1, 1)});
  g.RunFor(20 * sim::kUsPerMs);
  ASSERT_GE(g.leader->dlsn(), h.end_lsn);

  g.net.SetNodeUp(g.leader->node(), false);
  g.RunFor(2000 * sim::kUsPerMs);
  PaxosMember* new_leader = g.group->CurrentLeader();
  ASSERT_NE(new_leader, nullptr);
  EXPECT_NE(new_leader, g.leader);
  // Committed (durable) entries survive the failover.
  EXPECT_GE(new_leader->log()->current_lsn(), h.end_lsn);
  std::vector<RedoRecord> recs;
  ASSERT_TRUE(new_leader->log()->ReadRecords(1, h.end_lsn, &recs).ok());
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].txn_id, 1u);
}

TEST(PaxosTest, NewLeaderKeepsReplicating) {
  GroupFixture g;
  g.leader->Append({TestRecord(1, 1)});
  g.RunFor(20 * sim::kUsPerMs);
  g.net.SetNodeUp(g.leader->node(), false);
  g.RunFor(2000 * sim::kUsPerMs);
  PaxosMember* new_leader = g.group->CurrentLeader();
  ASSERT_NE(new_leader, nullptr);
  MtrHandle h2 = new_leader->Append({TestRecord(2, 2)});
  g.RunFor(2000 * sim::kUsPerMs);
  EXPECT_GE(new_leader->dlsn(), h2.end_lsn)
      << "two survivors still form a majority";
}

TEST(PaxosTest, DeposedLeaderTruncatesUnackedSuffix) {
  GroupFixture g;
  MtrHandle durable = g.leader->Append({TestRecord(1, 1)});
  g.RunFor(20 * sim::kUsPerMs);

  // Partition the leader, then write into the void (never majority-acked).
  g.net.SetNodeUp(g.leader->node(), false);
  MtrHandle lost = g.leader->Append({TestRecord(99, 99)});
  EXPECT_GT(g.leader->log()->current_lsn(), durable.end_lsn);

  g.RunFor(2000 * sim::kUsPerMs);
  PaxosMember* new_leader = g.group->CurrentLeader();
  ASSERT_NE(new_leader, nullptr);
  MtrHandle h2 = new_leader->Append({TestRecord(2, 2)});
  g.RunFor(2000 * sim::kUsPerMs);
  ASSERT_GE(new_leader->dlsn(), h2.end_lsn);

  // Old leader rejoins: must drop the unacked suffix and converge.
  g.net.SetNodeUp(g.leader->node(), true);
  g.leader->Recover();
  g.RunFor(5000 * sim::kUsPerMs);
  EXPECT_EQ(g.leader->log()->current_lsn(),
            new_leader->log()->current_lsn());
  std::string a, b;
  g.leader->log()->ReadBytes(durable.end_lsn, g.leader->log()->current_lsn(),
                             &a);
  new_leader->log()->ReadBytes(durable.end_lsn,
                               new_leader->log()->current_lsn(), &b);
  EXPECT_EQ(a, b) << "diverged suffix must be replaced, txn 99 gone";
  std::vector<RedoRecord> recs;
  ASSERT_TRUE(
      g.leader->log()->ReadRecords(1, g.leader->log()->current_lsn(), &recs)
          .ok());
  for (const auto& rec : recs) EXPECT_NE(rec.txn_id, 99u);
  (void)lost;
}

TEST(PaxosTest, LoggerCountsTowardQuorumButNeverLeads) {
  GroupFixture g({}, /*third_is_logger=*/true);
  MtrHandle h = g.leader->Append({TestRecord(1, 1)});
  g.RunFor(20 * sim::kUsPerMs);
  EXPECT_GE(g.leader->dlsn(), h.end_lsn);

  // Kill leader AND the data follower: only the logger remains alive; it
  // must not elect itself.
  g.net.SetNodeUp(g.leader->node(), false);
  g.net.SetNodeUp(g.f1->node(), false);
  g.RunFor(5000 * sim::kUsPerMs);
  EXPECT_EQ(g.group->CurrentLeader(), nullptr);
  EXPECT_NE(g.f2->role(), PaxosRole::kLeader);
}

TEST(PaxosTest, LoggerQuorumEnablesDurabilityWithOneDataFollowerDown) {
  GroupFixture g({}, /*third_is_logger=*/true);
  g.RunFor(5 * sim::kUsPerMs);
  g.net.SetNodeUp(g.f1->node(), false);  // data follower down
  MtrHandle h = g.leader->Append({TestRecord(1, 1)});
  g.RunFor(20 * sim::kUsPerMs);
  EXPECT_GE(g.leader->dlsn(), h.end_lsn)
      << "leader + logger form a majority";
}

TEST(PaxosTest, SurvivesSingleDcDisaster) {
  GroupFixture g;
  MtrHandle h = g.leader->Append({TestRecord(1, 1)});
  g.RunFor(20 * sim::kUsPerMs);
  // Entire DC0 (the leader's datacenter) goes dark.
  g.net.SetDcUp(0, false);
  g.RunFor(3000 * sim::kUsPerMs);
  PaxosMember* new_leader = g.group->CurrentLeader();
  ASSERT_NE(new_leader, nullptr);
  EXPECT_GE(new_leader->log()->current_lsn(), h.end_lsn)
      << "entries below DLSN survive a datacenter disaster";
  MtrHandle h2 = new_leader->Append({TestRecord(2, 2)});
  g.RunFor(3000 * sim::kUsPerMs);
  EXPECT_GE(new_leader->dlsn(), h2.end_lsn);
}

TEST(PaxosTest, StableLeaderNeverDeposedWithoutFailure) {
  GroupFixture g;
  for (int i = 0; i < 20; ++i) {
    g.leader->Append({TestRecord(1, i)});
    g.RunFor(100 * sim::kUsPerMs);
  }
  EXPECT_EQ(g.group->CurrentLeader(), g.leader);
  EXPECT_EQ(g.f1->elections_started(), 0u);
  EXPECT_EQ(g.f2->elections_started(), 0u);
}

TEST(PaxosTest, ReorderedStaleFrameNeverTruncatesFollower) {
  // Duplicate every leader->f1 frame and delay-spike some copies so frames
  // from one epoch arrive well out of send order: a late copy carries a
  // leader_log_end that is stale by many appends. Truncating to it would
  // discard bytes f1 already flushed and acked (counted into the leader's
  // DLSN). In a single stable epoch a follower's log must only grow, so no
  // truncation of any kind may fire.
  GroupFixture g;
  sim::LinkFault fault;
  fault.dup_prob = 1.0;
  fault.delay_spike_prob = 0.5;
  fault.delay_spike_us = 20 * sim::kUsPerMs;
  g.net.SetLinkFault(g.leader->node(), g.f1->node(), fault);

  int f1_truncations = 0;
  g.f1->OnTruncate([&](Lsn) { ++f1_truncations; });

  for (int i = 0; i < 40; ++i) {
    g.leader->Append({TestRecord(1, i)});
    g.RunFor(2 * sim::kUsPerMs);
  }
  g.RunFor(300 * sim::kUsPerMs);

  EXPECT_EQ(f1_truncations, 0);
  EXPECT_EQ(g.f1->log()->current_lsn(), g.leader->log()->current_lsn());
  std::string leader_bytes, f1_bytes;
  g.leader->log()->ReadBytes(1, g.leader->log()->current_lsn(),
                             &leader_bytes);
  g.f1->log()->ReadBytes(1, g.f1->log()->current_lsn(), &f1_bytes);
  EXPECT_EQ(leader_bytes, f1_bytes);
  EXPECT_EQ(g.leader->epoch(), 1u) << "no election should have occurred";
}

TEST(PaxosTest, HeartbeatsPropagateDlsnToFollowers) {
  GroupFixture g;
  MtrHandle h = g.leader->Append({TestRecord(1, 1)});
  g.RunFor(200 * sim::kUsPerMs);  // several heartbeat periods
  EXPECT_GE(g.f1->dlsn(), h.end_lsn);
  EXPECT_GE(g.f2->dlsn(), h.end_lsn);
}

}  // namespace
}  // namespace polarx
