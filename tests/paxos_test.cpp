// Tests for Paxos-with-leader-lease redo replication (§III): DLSN safety,
// asynchronous commit, batching/pipelining, leader election, old-leader
// cleanup, logger role, and DC-disaster survival.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <random>
#include <vector>

#include "src/consensus/paxos.h"
#include "src/sim/network.h"
#include "src/storage/key_codec.h"

namespace polarx {
namespace {

RedoRecord TestRecord(TxnId txn, int64_t id) {
  RedoRecord rec;
  rec.type = RedoType::kInsert;
  rec.txn_id = txn;
  rec.table_id = 1;
  rec.key = EncodeKey({id});
  rec.row = {id, std::string("value-") + std::to_string(id)};
  return rec;
}

/// A 3-DC deployment: leader in DC0, follower in DC1, follower or logger in
/// DC2, as in the paper's production topology.
struct GroupFixture {
  sim::Scheduler sched;
  sim::Network net;
  std::vector<std::unique_ptr<RedoLog>> logs;
  std::unique_ptr<PaxosGroup> group;
  PaxosMember* leader = nullptr;
  PaxosMember* f1 = nullptr;
  PaxosMember* f2 = nullptr;

  explicit GroupFixture(PaxosConfig cfg = {}, bool third_is_logger = false)
      : net(&sched, [] {
          sim::NetworkConfig nc;
          nc.jitter = 0;
          return nc;
        }()) {
    group = std::make_unique<PaxosGroup>(&net, cfg);
    for (int i = 0; i < 3; ++i) logs.push_back(std::make_unique<RedoLog>());
    NodeId n0 = net.AddNode(0, "dn-leader");
    NodeId n1 = net.AddNode(1, "dn-f1");
    NodeId n2 = net.AddNode(2, third_is_logger ? "dn-logger" : "dn-f2");
    leader = group->AddMember(n0, PaxosRole::kLeader, logs[0].get());
    f1 = group->AddMember(n1, PaxosRole::kFollower, logs[1].get());
    f2 = group->AddMember(
        n2, third_is_logger ? PaxosRole::kLogger : PaxosRole::kFollower,
        logs[2].get());
    group->Start();
  }

  void RunFor(sim::SimTime us) { sched.RunUntil(sched.Now() + us); }
};

TEST(PaxosTest, ReplicatesToFollowersAndAdvancesDlsn) {
  GroupFixture g;
  MtrHandle h = g.leader->Append({TestRecord(1, 1), TestRecord(1, 2)});
  g.RunFor(50 * sim::kUsPerMs);
  EXPECT_GE(g.leader->dlsn(), h.end_lsn);
  EXPECT_EQ(g.f1->log()->current_lsn(), g.leader->log()->current_lsn());
  EXPECT_EQ(g.f2->log()->current_lsn(), g.leader->log()->current_lsn());
  EXPECT_GE(g.f1->dlsn(), h.end_lsn);
}

TEST(PaxosTest, FollowerLogBytesIdenticalToLeader) {
  GroupFixture g;
  for (int i = 0; i < 50; ++i) g.leader->Append({TestRecord(1, i)});
  g.RunFor(50 * sim::kUsPerMs);
  std::string leader_bytes, f1_bytes;
  g.leader->log()->ReadBytes(1, g.leader->log()->current_lsn(),
                             &leader_bytes);
  g.f1->log()->ReadBytes(1, g.f1->log()->current_lsn(), &f1_bytes);
  EXPECT_EQ(leader_bytes, f1_bytes);
}

TEST(PaxosTest, DlsnRequiresMajorityNotAll) {
  GroupFixture g;
  g.RunFor(5 * sim::kUsPerMs);
  g.net.SetNodeUp(g.f2->node(), false);  // one of three down
  MtrHandle h = g.leader->Append({TestRecord(1, 1)});
  g.RunFor(20 * sim::kUsPerMs);
  EXPECT_GE(g.leader->dlsn(), h.end_lsn) << "leader+f1 are a majority";
  EXPECT_LT(g.f2->log()->current_lsn(), h.end_lsn);
}

TEST(PaxosTest, NoDlsnAdvanceWithoutMajority) {
  GroupFixture g;
  g.RunFor(5 * sim::kUsPerMs);
  Lsn before = g.leader->dlsn();
  g.net.SetNodeUp(g.f1->node(), false);
  g.net.SetNodeUp(g.f2->node(), false);
  MtrHandle h = g.leader->Append({TestRecord(1, 1)});
  g.RunFor(50 * sim::kUsPerMs);
  EXPECT_LT(g.leader->dlsn(), h.end_lsn);
  EXPECT_GE(g.leader->dlsn(), before);
}

TEST(PaxosTest, AsyncCommitterFiresOnDurability) {
  GroupFixture g;
  AsyncCommitter committer(g.leader);
  std::vector<int> completed;
  MtrHandle h1 = g.leader->Append({TestRecord(1, 1)});
  committer.Submit(h1.end_lsn, [&] { completed.push_back(1); });
  MtrHandle h2 = g.leader->Append({TestRecord(2, 2)});
  committer.Submit(h2.end_lsn, [&] { completed.push_back(2); });
  EXPECT_TRUE(completed.empty()) << "must not complete before majority ack";
  g.RunFor(20 * sim::kUsPerMs);
  EXPECT_EQ(completed, (std::vector<int>{1, 2}));
  EXPECT_EQ(committer.pending(), 0u);
}

TEST(PaxosTest, AsyncCommitterImmediateWhenAlreadyDurable) {
  GroupFixture g;
  MtrHandle h = g.leader->Append({TestRecord(1, 1)});
  g.RunFor(20 * sim::kUsPerMs);
  AsyncCommitter committer(g.leader);
  bool fired = false;
  committer.Submit(h.end_lsn, [&] { fired = true; });
  EXPECT_TRUE(fired);
}

TEST(PaxosTest, FollowersApplyOnlyUpToDlsn) {
  GroupFixture g;
  std::vector<TxnId> applied;
  g.f1->SetApplyFn([&](const RedoRecord& rec) {
    applied.push_back(rec.txn_id);
  });
  g.leader->Append({TestRecord(7, 1)});
  g.RunFor(50 * sim::kUsPerMs);
  ASSERT_EQ(applied.size(), 1u);
  EXPECT_EQ(applied[0], 7u);
  EXPECT_LE(g.f1->applied_lsn(), g.f1->dlsn());
}

TEST(PaxosTest, LargeMtrBatchedInto16KbFrames) {
  PaxosConfig cfg;
  cfg.max_batch_bytes = 16 * 1024;
  GroupFixture g(cfg);
  // ~100 records of ~500 bytes: several frames needed.
  std::vector<RedoRecord> records;
  for (int i = 0; i < 100; ++i) {
    RedoRecord rec = TestRecord(1, i);
    rec.row[1] = std::string(400, 'x');
    records.push_back(rec);
  }
  uint64_t frames_before = g.leader->frames_sent();
  MtrHandle h = g.leader->Append(records);
  g.RunFor(50 * sim::kUsPerMs);
  uint64_t frames = g.leader->frames_sent() - frames_before;
  size_t total_bytes = h.end_lsn - h.start_lsn;
  EXPECT_GE(frames, 2 * (total_bytes / (16 * 1024)));  // 2 followers
  EXPECT_GE(g.leader->dlsn(), h.end_lsn);
  // Frame boundaries never split a record: followers can parse everything.
  std::vector<RedoRecord> parsed;
  ASSERT_TRUE(
      g.f1->log()->ReadRecords(1, g.f1->log()->current_lsn(), &parsed).ok());
  EXPECT_EQ(parsed.size(), 100u);
}

TEST(PaxosTest, PipeliningBeatsStopAndWait) {
  // With ~1ms RTT, pipelined replication of N MTRs should converge much
  // faster than one-frame-at-a-time.
  auto run = [](bool pipelining) {
    PaxosConfig cfg;
    cfg.pipelining = pipelining;
    cfg.max_batch_bytes = 256;  // force many frames
    GroupFixture g(cfg);
    for (int i = 0; i < 50; ++i) g.leader->Append({TestRecord(1, i)});
    Lsn target = g.leader->log()->current_lsn();
    while (g.leader->dlsn() < target && g.sched.PendingEvents() > 0) {
      g.sched.Step();
    }
    return g.sched.Now();
  };
  sim::SimTime pipelined = run(true);
  sim::SimTime stop_and_wait = run(false);
  EXPECT_LT(pipelined * 3, stop_and_wait)
      << "pipelining must hide propagation delay";
}

TEST(PaxosTest, ElectsNewLeaderAfterLeaderFailure) {
  GroupFixture g;
  MtrHandle h = g.leader->Append({TestRecord(1, 1)});
  g.RunFor(20 * sim::kUsPerMs);
  ASSERT_GE(g.leader->dlsn(), h.end_lsn);

  g.net.SetNodeUp(g.leader->node(), false);
  g.RunFor(2000 * sim::kUsPerMs);
  PaxosMember* new_leader = g.group->CurrentLeader();
  ASSERT_NE(new_leader, nullptr);
  EXPECT_NE(new_leader, g.leader);
  // Committed (durable) entries survive the failover.
  EXPECT_GE(new_leader->log()->current_lsn(), h.end_lsn);
  std::vector<RedoRecord> recs;
  ASSERT_TRUE(new_leader->log()->ReadRecords(1, h.end_lsn, &recs).ok());
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].txn_id, 1u);
}

TEST(PaxosTest, NewLeaderKeepsReplicating) {
  GroupFixture g;
  g.leader->Append({TestRecord(1, 1)});
  g.RunFor(20 * sim::kUsPerMs);
  g.net.SetNodeUp(g.leader->node(), false);
  g.RunFor(2000 * sim::kUsPerMs);
  PaxosMember* new_leader = g.group->CurrentLeader();
  ASSERT_NE(new_leader, nullptr);
  MtrHandle h2 = new_leader->Append({TestRecord(2, 2)});
  g.RunFor(2000 * sim::kUsPerMs);
  EXPECT_GE(new_leader->dlsn(), h2.end_lsn)
      << "two survivors still form a majority";
}

TEST(PaxosTest, DeposedLeaderTruncatesUnackedSuffix) {
  GroupFixture g;
  MtrHandle durable = g.leader->Append({TestRecord(1, 1)});
  g.RunFor(20 * sim::kUsPerMs);

  // Partition the leader, then write into the void (never majority-acked).
  g.net.SetNodeUp(g.leader->node(), false);
  MtrHandle lost = g.leader->Append({TestRecord(99, 99)});
  EXPECT_GT(g.leader->log()->current_lsn(), durable.end_lsn);

  g.RunFor(2000 * sim::kUsPerMs);
  PaxosMember* new_leader = g.group->CurrentLeader();
  ASSERT_NE(new_leader, nullptr);
  MtrHandle h2 = new_leader->Append({TestRecord(2, 2)});
  g.RunFor(2000 * sim::kUsPerMs);
  ASSERT_GE(new_leader->dlsn(), h2.end_lsn);

  // Old leader rejoins: must drop the unacked suffix and converge.
  g.net.SetNodeUp(g.leader->node(), true);
  g.leader->Recover();
  g.RunFor(5000 * sim::kUsPerMs);
  EXPECT_EQ(g.leader->log()->current_lsn(),
            new_leader->log()->current_lsn());
  std::string a, b;
  g.leader->log()->ReadBytes(durable.end_lsn, g.leader->log()->current_lsn(),
                             &a);
  new_leader->log()->ReadBytes(durable.end_lsn,
                               new_leader->log()->current_lsn(), &b);
  EXPECT_EQ(a, b) << "diverged suffix must be replaced, txn 99 gone";
  std::vector<RedoRecord> recs;
  ASSERT_TRUE(
      g.leader->log()->ReadRecords(1, g.leader->log()->current_lsn(), &recs)
          .ok());
  for (const auto& rec : recs) EXPECT_NE(rec.txn_id, 99u);
  (void)lost;
}

TEST(PaxosTest, LoggerCountsTowardQuorumButNeverLeads) {
  GroupFixture g({}, /*third_is_logger=*/true);
  MtrHandle h = g.leader->Append({TestRecord(1, 1)});
  g.RunFor(20 * sim::kUsPerMs);
  EXPECT_GE(g.leader->dlsn(), h.end_lsn);

  // Kill leader AND the data follower: only the logger remains alive; it
  // must not elect itself.
  g.net.SetNodeUp(g.leader->node(), false);
  g.net.SetNodeUp(g.f1->node(), false);
  g.RunFor(5000 * sim::kUsPerMs);
  EXPECT_EQ(g.group->CurrentLeader(), nullptr);
  EXPECT_NE(g.f2->role(), PaxosRole::kLeader);
}

TEST(PaxosTest, LoggerQuorumEnablesDurabilityWithOneDataFollowerDown) {
  GroupFixture g({}, /*third_is_logger=*/true);
  g.RunFor(5 * sim::kUsPerMs);
  g.net.SetNodeUp(g.f1->node(), false);  // data follower down
  MtrHandle h = g.leader->Append({TestRecord(1, 1)});
  g.RunFor(20 * sim::kUsPerMs);
  EXPECT_GE(g.leader->dlsn(), h.end_lsn)
      << "leader + logger form a majority";
}

TEST(PaxosTest, SurvivesSingleDcDisaster) {
  GroupFixture g;
  MtrHandle h = g.leader->Append({TestRecord(1, 1)});
  g.RunFor(20 * sim::kUsPerMs);
  // Entire DC0 (the leader's datacenter) goes dark.
  g.net.SetDcUp(0, false);
  g.RunFor(3000 * sim::kUsPerMs);
  PaxosMember* new_leader = g.group->CurrentLeader();
  ASSERT_NE(new_leader, nullptr);
  EXPECT_GE(new_leader->log()->current_lsn(), h.end_lsn)
      << "entries below DLSN survive a datacenter disaster";
  MtrHandle h2 = new_leader->Append({TestRecord(2, 2)});
  g.RunFor(3000 * sim::kUsPerMs);
  EXPECT_GE(new_leader->dlsn(), h2.end_lsn);
}

TEST(PaxosTest, StableLeaderNeverDeposedWithoutFailure) {
  GroupFixture g;
  for (int i = 0; i < 20; ++i) {
    g.leader->Append({TestRecord(1, i)});
    g.RunFor(100 * sim::kUsPerMs);
  }
  EXPECT_EQ(g.group->CurrentLeader(), g.leader);
  EXPECT_EQ(g.f1->elections_started(), 0u);
  EXPECT_EQ(g.f2->elections_started(), 0u);
}

TEST(PaxosTest, ReorderedStaleFrameNeverTruncatesFollower) {
  // Duplicate every leader->f1 frame and delay-spike some copies so frames
  // from one epoch arrive well out of send order: a late copy carries a
  // leader_log_end that is stale by many appends. Truncating to it would
  // discard bytes f1 already flushed and acked (counted into the leader's
  // DLSN). In a single stable epoch a follower's log must only grow, so no
  // truncation of any kind may fire.
  GroupFixture g;
  sim::LinkFault fault;
  fault.dup_prob = 1.0;
  fault.delay_spike_prob = 0.5;
  fault.delay_spike_us = 20 * sim::kUsPerMs;
  g.net.SetLinkFault(g.leader->node(), g.f1->node(), fault);

  int f1_truncations = 0;
  g.f1->OnTruncate([&](Lsn) { ++f1_truncations; });

  for (int i = 0; i < 40; ++i) {
    g.leader->Append({TestRecord(1, i)});
    g.RunFor(2 * sim::kUsPerMs);
  }
  g.RunFor(300 * sim::kUsPerMs);

  EXPECT_EQ(f1_truncations, 0);
  EXPECT_EQ(g.f1->log()->current_lsn(), g.leader->log()->current_lsn());
  std::string leader_bytes, f1_bytes;
  g.leader->log()->ReadBytes(1, g.leader->log()->current_lsn(),
                             &leader_bytes);
  g.f1->log()->ReadBytes(1, g.f1->log()->current_lsn(), &f1_bytes);
  EXPECT_EQ(leader_bytes, f1_bytes);
  EXPECT_EQ(g.leader->epoch(), 1u) << "no election should have occurred";
}

TEST(PaxosTest, HeartbeatsPropagateDlsnToFollowers) {
  GroupFixture g;
  MtrHandle h = g.leader->Append({TestRecord(1, 1)});
  g.RunFor(200 * sim::kUsPerMs);  // several heartbeat periods
  EXPECT_GE(g.f1->dlsn(), h.end_lsn);
  EXPECT_GE(g.f2->dlsn(), h.end_lsn);
}

// ---------------------------------------------------------------------------
// Incremental quorum tracking (replaces the per-ack sort in HandleAck)
// ---------------------------------------------------------------------------

TEST(QuorumMatchTrackerTest, MatchesSortedRecomputeOverRandomAckOrders) {
  // The old DLSN computation collected every member's match LSN, sorted
  // descending, and took the quorum-th largest. The tracker must agree
  // with that after every single update, for any interleaving of
  // monotonically increasing per-member acks.
  for (uint64_t seed : {1u, 7u, 42u, 1234u, 99999u}) {
    std::mt19937_64 rng(seed);
    for (size_t members : {3u, 5u, 7u}) {
      size_t quorum = members / 2 + 1;
      QuorumMatchTracker tracker;
      tracker.Reset(quorum);
      std::map<NodeId, Lsn> model;
      for (int step = 0; step < 400; ++step) {
        NodeId id = NodeId(rng() % members + 1);
        Lsn bump = rng() % 500;
        Lsn next = model.count(id) ? model[id] + bump : bump + 1;
        // Exercise the stale-ack path too: occasionally send a value at
        // or below the current match, which must be ignored.
        if (rng() % 4 == 0 && model.count(id)) next = model[id] - bump % 2;
        tracker.Set(id, next);
        model[id] = std::max(model[id], next);

        std::vector<Lsn> sorted;
        for (auto& [n, l] : model) sorted.push_back(l);
        std::sort(sorted.begin(), sorted.end(), std::greater<Lsn>());
        Lsn expected = sorted.size() < quorum ? 0 : sorted[quorum - 1];
        ASSERT_EQ(tracker.QuorumValue(), expected)
            << "seed=" << seed << " members=" << members << " step=" << step;
      }
    }
  }
}

TEST(QuorumMatchTrackerTest, BelowQuorumReportsZero) {
  QuorumMatchTracker tracker;
  tracker.Reset(2);
  EXPECT_EQ(tracker.QuorumValue(), 0u);
  tracker.Set(1, 100);
  EXPECT_EQ(tracker.QuorumValue(), 0u) << "one entry cannot form quorum 2";
  tracker.Set(2, 60);
  EXPECT_EQ(tracker.QuorumValue(), 60u);
  tracker.Set(2, 150);
  EXPECT_EQ(tracker.QuorumValue(), 100u);
}

// ---------------------------------------------------------------------------
// Follower ack coalescing (pipelined appends answered by cumulative acks)
// ---------------------------------------------------------------------------

TEST(PaxosTest, CoalescedAcksCoverPipelinedFrames) {
  PaxosConfig cfg;
  cfg.max_batch_bytes = 256;  // force many frames per burst
  GroupFixture g(cfg);
  // Burst appends faster than the follower's flush latency: frames arrive
  // while a flush is in flight and must fold into its ack window.
  for (int i = 0; i < 60; ++i) g.leader->Append({TestRecord(1, i)});
  g.RunFor(100 * sim::kUsPerMs);
  ASSERT_GE(g.leader->dlsn(), g.leader->log()->current_lsn());
  EXPECT_EQ(g.f1->log()->current_lsn(), g.leader->log()->current_lsn());
  // The whole point: far fewer acks (and follower flushes) than frames.
  EXPECT_GT(g.f1->frames_received(), g.f1->acks_sent())
      << "a burst must be answered by cumulative acks, not one per frame";
}

// ---------------------------------------------------------------------------
// Leader-side redo group commit
// ---------------------------------------------------------------------------

/// Appends one MTR to the leader's log WITHOUT flushing or replicating —
/// exactly what the DN engine does before its durability hook fires.
MtrHandle EngineAppend(PaxosMember* leader, TxnId txn, int64_t id) {
  return leader->log()->AppendMtr({TestRecord(txn, id)});
}

TEST(GroupCommitTest, ConcurrentSubmitsShareOneFlush) {
  GroupFixture g;
  GroupCommitConfig gcc;
  GroupCommitDriver driver(&g.sched, g.leader, gcc);
  AsyncCommitter committer(g.leader);
  int completed = 0;
  // A burst of 16 commits in the same instant: the first Submit opens a
  // flush; the other 15 accumulate behind it and ride the second flush.
  for (int i = 0; i < 16; ++i) {
    MtrHandle h = EngineAppend(g.leader, TxnId(i + 1), i);
    driver.Submit(h.end_lsn);
    committer.Submit(h.end_lsn, [&] { ++completed; });
  }
  g.RunFor(100 * sim::kUsPerMs);
  EXPECT_EQ(completed, 16);
  EXPECT_GE(g.leader->dlsn(), g.leader->log()->current_lsn());
  EXPECT_EQ(driver.submits(), 16u);
  EXPECT_LE(driver.flushes(), 2u) << "16 commits must not pay 16 flushes";
  EXPECT_GE(driver.max_group(), 15u);
}

TEST(GroupCommitTest, DisabledModeFlushesOncePerSubmit) {
  GroupFixture g;
  GroupCommitConfig gcc;
  gcc.enabled = false;
  GroupCommitDriver driver(&g.sched, g.leader, gcc);
  AsyncCommitter committer(g.leader);
  int completed = 0;
  for (int i = 0; i < 8; ++i) {
    MtrHandle h = EngineAppend(g.leader, TxnId(i + 1), i);
    driver.Submit(h.end_lsn);
    committer.Submit(h.end_lsn, [&] { ++completed; });
  }
  g.RunFor(100 * sim::kUsPerMs);
  EXPECT_EQ(completed, 8);
  EXPECT_EQ(driver.flushes(), 8u)
      << "ablation baseline: one serialized flush per commit";
  EXPECT_EQ(driver.max_group(), 1u);
}

TEST(GroupCommitTest, ByteCapSplitsGroupsAtMtrBoundaries) {
  GroupFixture g;
  GroupCommitConfig gcc;
  gcc.max_group_bytes = 512;  // far below the burst's total
  GroupCommitDriver driver(&g.sched, g.leader, gcc);
  std::vector<Lsn> ends;
  for (int i = 0; i < 20; ++i) {
    MtrHandle h = EngineAppend(g.leader, TxnId(i + 1), i);
    ends.push_back(h.end_lsn);
    driver.Submit(h.end_lsn);
  }
  g.RunFor(100 * sim::kUsPerMs);
  EXPECT_GT(driver.flushes(), 2u) << "byte cap must split the burst";
  EXPECT_EQ(g.leader->log()->flushed_lsn(), ends.back());
  // Every flush target sat on an MTR boundary: the final flushed LSN
  // parses cleanly with no partial record tail.
  std::vector<RedoRecord> recs;
  ASSERT_TRUE(
      g.leader->log()->ReadRecords(1, g.leader->log()->flushed_lsn(), &recs)
          .ok());
  EXPECT_EQ(recs.size(), 20u);
}

TEST(GroupCommitTest, IdleSubmitFlushesWithoutWaitingForWindow) {
  GroupFixture g;
  GroupCommitConfig gcc;
  gcc.max_group_wait_us = 10 * 1000;  // a large window must NOT add latency
  GroupCommitDriver driver(&g.sched, g.leader, gcc);
  MtrHandle h = EngineAppend(g.leader, 1, 1);
  sim::SimTime before = g.sched.Now();
  driver.Submit(h.end_lsn);
  while (g.leader->log()->flushed_lsn() < h.end_lsn &&
         g.sched.PendingEvents() > 0) {
    g.sched.Step();
  }
  EXPECT_LE(g.sched.Now() - before, gcc.flush_latency_us + 1)
      << "an idle driver fires immediately; the window only forms under "
         "load";
}

TEST(GroupCommitTest, TruncationVoidsInFlightFlush) {
  // The leader is partitioned mid-burst, a new leader takes over, and the
  // old one truncates its unacked suffix on rejoin. A group flush that was
  // in flight across the truncation must NOT mark the (reassigned) LSN
  // range flushed.
  GroupFixture g;
  GroupCommitDriver driver(&g.sched, g.leader, {});
  MtrHandle durable = g.leader->Append({TestRecord(1, 1)});
  g.RunFor(20 * sim::kUsPerMs);
  ASSERT_GE(g.leader->dlsn(), durable.end_lsn);

  g.net.SetNodeUp(g.leader->node(), false);
  MtrHandle lost = EngineAppend(g.leader, 99, 99);
  driver.Submit(lost.end_lsn);  // flush now in flight toward doomed bytes

  g.RunFor(2000 * sim::kUsPerMs);
  PaxosMember* new_leader = g.group->CurrentLeader();
  ASSERT_NE(new_leader, nullptr);
  MtrHandle h2 = new_leader->Append({TestRecord(2, 2)});
  g.RunFor(2000 * sim::kUsPerMs);
  ASSERT_GE(new_leader->dlsn(), h2.end_lsn);

  g.net.SetNodeUp(g.leader->node(), true);
  g.leader->Recover();
  g.RunFor(5000 * sim::kUsPerMs);
  // Old leader converged on the new history; txn 99 is gone and nothing
  // beyond the converged log is marked flushed.
  EXPECT_LE(g.leader->log()->flushed_lsn(), g.leader->log()->current_lsn());
  std::vector<RedoRecord> recs;
  ASSERT_TRUE(
      g.leader->log()->ReadRecords(1, g.leader->log()->current_lsn(), &recs)
          .ok());
  for (const auto& rec : recs) EXPECT_NE(rec.txn_id, 99u);
}

}  // namespace
}  // namespace polarx
