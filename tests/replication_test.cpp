// Tests for RW->RO replication (§II-C / Fig. 3): apply correctness, snapshot
// reads on replicas, session consistency, lag kick-out, and purge gating.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "src/clock/hlc.h"
#include "src/replication/rw_ro.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/key_codec.h"
#include "src/txn/engine.h"

namespace polarx {
namespace {

constexpr TableId kTable = 1;

Schema KvSchema() {
  return Schema({{"id", ValueType::kInt64, false},
                 {"val", ValueType::kString, true}},
                {0});
}

struct RwFixture {
  uint64_t now_ms = 1000;
  TableCatalog catalog;
  Hlc hlc;
  RedoLog log;
  CountingPageStore store;
  BufferPool pool;
  TxnEngine engine;
  RwRoReplication repl;

  RwFixture()
      : hlc([this] { return now_ms; }),
        pool(&store),
        engine(1, &catalog, &hlc, &log, &pool),
        repl(&log) {
    catalog.CreateTable(kTable, "kv", KvSchema(), 0);
  }

  Timestamp Put(int64_t id, const std::string& val) {
    TxnId txn = engine.Begin();
    EXPECT_TRUE(engine.Upsert(txn, kTable, {id, val}).ok());
    auto cts = engine.CommitLocal(txn);
    EXPECT_TRUE(cts.ok());
    return *cts;
  }

  std::unique_ptr<RoReplica> NewReplica(uint32_t id) {
    auto ro = std::make_unique<RoReplica>(id);
    EXPECT_TRUE(ro->MirrorTable(kTable, "kv", KvSchema(), 0).ok());
    repl.AddReplica(ro.get());
    return ro;
  }
};

TEST(ReplicationTest, ReplicaSeesCommittedWrites) {
  RwFixture f;
  auto ro = f.NewReplica(1);
  f.Put(1, "hello");
  f.repl.SyncAll();
  Row row;
  ASSERT_TRUE(ro->Read(kTable, EncodeKey({int64_t{1}}), &row).ok());
  EXPECT_EQ(std::get<std::string>(row[1]), "hello");
}

TEST(ReplicationTest, ReplicaDoesNotSeeUncommittedWrites) {
  RwFixture f;
  auto ro = f.NewReplica(1);
  TxnId txn = f.engine.Begin();
  ASSERT_TRUE(f.engine.Upsert(txn, kTable, {int64_t{1}, std::string("x")}).ok());
  // Flush the row record (but no commit yet) and sync.
  f.log.MarkFlushed(f.log.current_lsn());
  f.repl.SyncAll();
  Row row;
  EXPECT_TRUE(ro->Read(kTable, EncodeKey({int64_t{1}}), &row).IsNotFound());
  // Commit then sync: visible.
  ASSERT_TRUE(f.engine.CommitLocal(txn).ok());
  f.repl.SyncAll();
  ASSERT_TRUE(ro->Read(kTable, EncodeKey({int64_t{1}}), &row).ok());
}

TEST(ReplicationTest, AbortedTxnNeverVisibleOnReplica) {
  RwFixture f;
  auto ro = f.NewReplica(1);
  TxnId txn = f.engine.Begin();
  ASSERT_TRUE(f.engine.Upsert(txn, kTable, {int64_t{1}, std::string("x")}).ok());
  ASSERT_TRUE(f.engine.Abort(txn).ok());
  f.log.MarkFlushed(f.log.current_lsn());
  f.repl.SyncAll();
  Row row;
  EXPECT_TRUE(ro->Read(kTable, EncodeKey({int64_t{1}}), &row).IsNotFound());
}

TEST(ReplicationTest, SnapshotReadsAtOlderTimestamps) {
  RwFixture f;
  auto ro = f.NewReplica(1);
  Timestamp t1 = f.Put(1, "v1");
  f.now_ms += 10;
  f.Put(1, "v2");
  f.repl.SyncAll();
  Row row;
  ASSERT_TRUE(ro->Read(kTable, EncodeKey({int64_t{1}}), &row, t1).ok());
  EXPECT_EQ(std::get<std::string>(row[1]), "v1");
  ASSERT_TRUE(ro->Read(kTable, EncodeKey({int64_t{1}}), &row).ok());
  EXPECT_EQ(std::get<std::string>(row[1]), "v2");
}

TEST(ReplicationTest, DeleteReplicates) {
  RwFixture f;
  auto ro = f.NewReplica(1);
  f.Put(1, "x");
  TxnId txn = f.engine.Begin();
  ASSERT_TRUE(f.engine.Delete(txn, kTable, EncodeKey({int64_t{1}})).ok());
  ASSERT_TRUE(f.engine.CommitLocal(txn).ok());
  f.repl.SyncAll();
  Row row;
  EXPECT_TRUE(ro->Read(kTable, EncodeKey({int64_t{1}}), &row).IsNotFound());
}

TEST(ReplicationTest, ScanOnReplica) {
  RwFixture f;
  auto ro = f.NewReplica(1);
  for (int64_t i = 0; i < 10; ++i) f.Put(i, "v" + std::to_string(i));
  f.repl.SyncAll();
  int count = 0;
  ASSERT_TRUE(ro->Scan(kTable, "", "", 0,
                       [&](const EncodedKey&, const Row&) {
                         ++count;
                         return true;
                       })
                  .ok());
  EXPECT_EQ(count, 10);
}

TEST(ReplicationTest, MultipleReplicasConverge) {
  RwFixture f;
  auto ro1 = f.NewReplica(1);
  auto ro2 = f.NewReplica(2);
  auto ro3 = f.NewReplica(3);
  for (int64_t i = 0; i < 20; ++i) f.Put(i, "x");
  f.repl.SyncAll();
  for (RoReplica* ro : {ro1.get(), ro2.get(), ro3.get()}) {
    EXPECT_EQ(ro->applied_lsn(), f.log.flushed_lsn());
    Row row;
    EXPECT_TRUE(ro->Read(kTable, EncodeKey({int64_t{19}}), &row).ok());
  }
}

TEST(ReplicationTest, SessionConsistencyWaitsForRwLsn) {
  // §II-C: a CN piggybacks the RW's LSN; the RO must wait until it has
  // applied at least that far before serving the read.
  RwFixture f;
  auto ro = f.NewReplica(1);
  f.Put(1, "v1");
  Lsn rw_lsn = f.log.current_lsn();
  // Replica is behind; a zero-timeout wait fails.
  EXPECT_TRUE(ro->WaitForLsn(rw_lsn, 0).IsTimedOut());
  // Pull in another thread; the wait must then succeed.
  std::thread puller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ro->PullFrom(f.log);
  });
  EXPECT_TRUE(ro->WaitForLsn(rw_lsn, 2000).ok());
  puller.join();
  Row row;
  ASSERT_TRUE(ro->Read(kTable, EncodeKey({int64_t{1}}), &row).ok());
  EXPECT_EQ(std::get<std::string>(row[1]), "v1");
}

TEST(ReplicationTest, MinRoLsnBoundsPurge) {
  RwFixture f;
  auto ro1 = f.NewReplica(1);
  auto ro2 = f.NewReplica(2);
  f.Put(1, "a");
  ro1->PullFrom(f.log);  // ro1 caught up; ro2 still at 1
  EXPECT_EQ(f.repl.MinRoLsn(), 1u);
  f.repl.PurgeConsumedLog();
  EXPECT_EQ(f.log.purged_before(), 1u) << "cannot purge past ro2";
  ro2->PullFrom(f.log);
  EXPECT_EQ(f.repl.MinRoLsn(), f.log.flushed_lsn());
  f.repl.PurgeConsumedLog();
  EXPECT_EQ(f.log.purged_before(), f.log.flushed_lsn());
}

TEST(ReplicationTest, LaggardReplicaKickedOut) {
  RwFixture f;
  RwRoReplication::Options opts;
  opts.max_lag_bytes = 64;
  RwRoReplication repl(&f.log, opts);
  auto ro_fast = std::make_unique<RoReplica>(1);
  auto ro_slow = std::make_unique<RoReplica>(2);
  ro_fast->MirrorTable(kTable, "kv", KvSchema(), 0);
  ro_slow->MirrorTable(kTable, "kv", KvSchema(), 0);
  repl.AddReplica(ro_fast.get());
  repl.AddReplica(ro_slow.get());

  for (int64_t i = 0; i < 20; ++i) f.Put(i, "x");
  ro_fast->PullFrom(f.log);  // only the fast one keeps up
  auto kicked = repl.KickLaggards();
  ASSERT_EQ(kicked.size(), 1u);
  EXPECT_EQ(kicked[0], 2u);
  EXPECT_EQ(repl.replicas().size(), 1u);
  // With the laggard gone, min lsn_RO advances and the log can purge.
  EXPECT_EQ(repl.MinRoLsn(), f.log.flushed_lsn());
}

TEST(ReplicationTest, ReattachedReplicaFastForwardsPastPurge) {
  RwFixture f;
  f.Put(1, "early");
  f.log.PurgeBefore(f.log.flushed_lsn());
  auto ro = f.NewReplica(1);
  f.Put(2, "late");
  f.repl.SyncAll();
  Row row;
  // Row 1 predates the purge horizon: this mirror never sees it (it would
  // come from a checkpoint in production)...
  EXPECT_TRUE(ro->Read(kTable, EncodeKey({int64_t{1}}), &row).IsNotFound());
  // ...but everything after attachment replicates fine.
  ASSERT_TRUE(ro->Read(kTable, EncodeKey({int64_t{2}}), &row).ok());
}

TEST(ReplicationTest, CommitHookObservesTransactions) {
  RwFixture f;
  auto ro = f.NewReplica(1);
  std::vector<std::pair<TxnId, size_t>> commits;
  ro->applier()->SetCommitHook(
      [&](TxnId txn, Timestamp, const std::vector<RedoRecord>& ops) {
        commits.emplace_back(txn, ops.size());
      });
  TxnId txn = f.engine.Begin();
  ASSERT_TRUE(f.engine.Upsert(txn, kTable, {int64_t{1}, std::string("a")}).ok());
  ASSERT_TRUE(f.engine.Upsert(txn, kTable, {int64_t{2}, std::string("b")}).ok());
  ASSERT_TRUE(f.engine.CommitLocal(txn).ok());
  f.repl.SyncAll();
  ASSERT_EQ(commits.size(), 1u);
  EXPECT_EQ(commits[0].second, 2u);
}

}  // namespace
}  // namespace polarx
