// Tests for the distributed 2PC coordinator under HLC-SI and TSO-SI:
// atomicity across shards, snapshot consistency, the §IV visibility proof
// scenario, and randomized multi-shard SI invariants.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "src/clock/hlc.h"
#include "src/clock/tso.h"
#include "src/common/rng.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/key_codec.h"
#include "src/txn/distributed.h"
#include "src/txn/engine.h"

namespace polarx {
namespace {

constexpr TableId kTable = 1;

/// A mini-cluster: N shard engines, each with its own (skewable) physical
/// clock, plus a CN clock and a TSO.
struct Cluster {
  uint64_t cn_ms = 1000;
  std::vector<uint64_t> dn_ms;
  Hlc cn_hlc;
  TsoService tso;
  struct Shard {
    TableCatalog catalog;
    std::unique_ptr<Hlc> hlc;
    RedoLog log;
    CountingPageStore store;
    std::unique_ptr<BufferPool> pool;
    std::unique_ptr<TxnEngine> engine;
  };
  std::vector<std::unique_ptr<Shard>> shards;

  explicit Cluster(size_t n, TsScheme scheme = TsScheme::kHlcSi,
                   std::vector<uint64_t> skews = {})
      : cn_hlc([this] { return cn_ms; }), tso([this] { return cn_ms; }) {
    dn_ms.resize(n, 1000);
    for (size_t i = 0; i < n; ++i) {
      if (i < skews.size()) dn_ms[i] = skews[i];
      auto shard = std::make_unique<Shard>();
      shard->hlc = std::make_unique<Hlc>([this, i] { return dn_ms[i]; });
      shard->pool = std::make_unique<BufferPool>(&shard->store);
      TxnEngineOptions opts;
      opts.use_prepare_ts_filter = (scheme == TsScheme::kHlcSi);
      shard->engine = std::make_unique<TxnEngine>(
          static_cast<uint32_t>(i + 1), &shard->catalog, shard->hlc.get(),
          &shard->log, shard->pool.get(), opts);
      Schema schema({{"id", ValueType::kInt64, false},
                     {"val", ValueType::kInt64, false}},
                    {0});
      shard->catalog.CreateTable(kTable, "t", schema, 0);
      shards.push_back(std::move(shard));
    }
  }

  TxnEngine* engine(size_t i) { return shards[i]->engine.get(); }

  void TickAll(uint64_t ms = 1) {
    cn_ms += ms;
    for (auto& t : dn_ms) t += ms;
  }
};

class SchemeTest : public ::testing::TestWithParam<TsScheme> {
 protected:
  TsScheme scheme() const { return GetParam(); }
};

TEST_P(SchemeTest, CrossShardCommitIsAtomic) {
  Cluster c(3, scheme());
  TxnCoordinator coord(scheme(), &c.cn_hlc, &c.tso);
  DistributedTxn txn = coord.Begin();
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(coord
                    .Insert(&txn, c.engine(i), kTable,
                            {int64_t(i), int64_t(100 + i)})
                    .ok());
  }
  ASSERT_TRUE(coord.Commit(&txn).ok());
  EXPECT_GT(txn.commit_ts(), 0u);

  c.TickAll();
  DistributedTxn reader = coord.Begin();
  for (size_t i = 0; i < 3; ++i) {
    Row row;
    ASSERT_TRUE(
        coord.Read(&reader, c.engine(i), kTable, EncodeKey({int64_t(i)}),
                   &row)
            .ok());
    EXPECT_EQ(std::get<int64_t>(row[1]), int64_t(100 + i));
  }
  ASSERT_TRUE(coord.Commit(&reader).ok());
}

TEST_P(SchemeTest, AbortRollsBackAllShards) {
  Cluster c(2, scheme());
  TxnCoordinator coord(scheme(), &c.cn_hlc, &c.tso);
  DistributedTxn txn = coord.Begin();
  ASSERT_TRUE(coord.Insert(&txn, c.engine(0), kTable, {int64_t{1}, int64_t{1}}).ok());
  ASSERT_TRUE(coord.Insert(&txn, c.engine(1), kTable, {int64_t{2}, int64_t{2}}).ok());
  ASSERT_TRUE(coord.Abort(&txn).ok());

  c.TickAll();
  DistributedTxn reader = coord.Begin();
  Row row;
  EXPECT_TRUE(coord.Read(&reader, c.engine(0), kTable, EncodeKey({int64_t{1}}), &row)
                  .IsNotFound());
  EXPECT_TRUE(coord.Read(&reader, c.engine(1), kTable, EncodeKey({int64_t{2}}), &row)
                  .IsNotFound());
}

TEST_P(SchemeTest, PrepareConflictAbortsEverywhere) {
  Cluster c(2, scheme());
  TxnCoordinator coord(scheme(), &c.cn_hlc, &c.tso);
  // t1 writes shard0 key 1; t2 writes shard1 key 2 then conflicts on shard0.
  DistributedTxn t1 = coord.Begin();
  ASSERT_TRUE(coord.Upsert(&t1, c.engine(0), kTable, {int64_t{1}, int64_t{10}}).ok());
  DistributedTxn t2 = coord.Begin();
  ASSERT_TRUE(coord.Upsert(&t2, c.engine(1), kTable, {int64_t{2}, int64_t{20}}).ok());
  EXPECT_TRUE(coord.Upsert(&t2, c.engine(0), kTable, {int64_t{1}, int64_t{99}})
                  .IsConflict());
  ASSERT_TRUE(coord.Abort(&t2).ok());
  ASSERT_TRUE(coord.Commit(&t1).ok());

  c.TickAll();
  DistributedTxn reader = coord.Begin();
  Row row;
  ASSERT_TRUE(
      coord.Read(&reader, c.engine(0), kTable, EncodeKey({int64_t{1}}), &row).ok());
  EXPECT_EQ(std::get<int64_t>(row[1]), 10);
  EXPECT_TRUE(coord.Read(&reader, c.engine(1), kTable, EncodeKey({int64_t{2}}), &row)
                  .IsNotFound());
}

TEST_P(SchemeTest, SnapshotSeesAllOrNothingOfConcurrentCommit) {
  // The fundamental cross-shard SI test: a reader must never observe a
  // distributed transaction's write on one shard but not the other.
  Cluster c(2, scheme());
  TxnCoordinator coord(scheme(), &c.cn_hlc, &c.tso);
  {
    DistributedTxn init = coord.Begin();
    ASSERT_TRUE(coord.Insert(&init, c.engine(0), kTable, {int64_t{1}, int64_t{0}}).ok());
    ASSERT_TRUE(coord.Insert(&init, c.engine(1), kTable, {int64_t{2}, int64_t{0}}).ok());
    ASSERT_TRUE(coord.Commit(&init).ok());
  }
  for (int round = 1; round <= 50; ++round) {
    c.TickAll();
    DistributedTxn writer = coord.Begin();
    ASSERT_TRUE(
        coord.Update(&writer, c.engine(0), kTable, {int64_t{1}, int64_t(round)}).ok());
    ASSERT_TRUE(
        coord.Update(&writer, c.engine(1), kTable, {int64_t{2}, int64_t(round)}).ok());
    ASSERT_TRUE(coord.Commit(&writer).ok());

    DistributedTxn reader = coord.Begin();
    Row a, b;
    ASSERT_TRUE(coord.Read(&reader, c.engine(0), kTable, EncodeKey({int64_t{1}}), &a).ok());
    ASSERT_TRUE(coord.Read(&reader, c.engine(1), kTable, EncodeKey({int64_t{2}}), &b).ok());
    EXPECT_EQ(std::get<int64_t>(a[1]), std::get<int64_t>(b[1]))
        << "torn snapshot in round " << round;
    ASSERT_TRUE(coord.Commit(&reader).ok());
  }
}

TEST_P(SchemeTest, OneShardCommitUsesFastPath) {
  Cluster c(2, scheme());
  TxnCoordinator coord(scheme(), &c.cn_hlc, &c.tso);
  DistributedTxn txn = coord.Begin();
  ASSERT_TRUE(coord.Insert(&txn, c.engine(0), kTable, {int64_t{1}, int64_t{1}}).ok());
  ASSERT_TRUE(coord.Commit(&txn).ok());
  if (scheme() == TsScheme::kHlcSi) {
    EXPECT_EQ(coord.stats().one_shard_commits, 1u);
  }
  EXPECT_EQ(coord.stats().committed, 1u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, SchemeTest,
                         ::testing::Values(TsScheme::kHlcSi,
                                           TsScheme::kTsoSi),
                         [](const auto& info) {
                           return info.param == TsScheme::kHlcSi ? "HlcSi"
                                                                 : "TsoSi";
                         });

TEST(HlcSiTest, WorksUnderSevereClockSkew) {
  // DN clocks skewed by seconds: HLC-SI must still give consistent
  // snapshots (the whole point of hybrid clocks vs Clock-SI).
  Cluster c(2, TsScheme::kHlcSi, {100, 60000});
  TxnCoordinator coord(TsScheme::kHlcSi, &c.cn_hlc, &c.tso);
  {
    DistributedTxn init = coord.Begin();
    ASSERT_TRUE(coord.Insert(&init, c.engine(0), kTable, {int64_t{1}, int64_t{0}}).ok());
    ASSERT_TRUE(coord.Insert(&init, c.engine(1), kTable, {int64_t{2}, int64_t{0}}).ok());
    ASSERT_TRUE(coord.Commit(&init).ok());
  }
  for (int round = 1; round <= 30; ++round) {
    c.TickAll();
    DistributedTxn writer = coord.Begin();
    ASSERT_TRUE(coord.Update(&writer, c.engine(0), kTable, {int64_t{1}, int64_t(round)}).ok());
    ASSERT_TRUE(coord.Update(&writer, c.engine(1), kTable, {int64_t{2}, int64_t(round)}).ok());
    ASSERT_TRUE(coord.Commit(&writer).ok());
    DistributedTxn reader = coord.Begin();
    Row a, b;
    ASSERT_TRUE(coord.Read(&reader, c.engine(0), kTable, EncodeKey({int64_t{1}}), &a).ok());
    ASSERT_TRUE(coord.Read(&reader, c.engine(1), kTable, EncodeKey({int64_t{2}}), &b).ok());
    EXPECT_EQ(std::get<int64_t>(a[1]), std::get<int64_t>(b[1]));
    ASSERT_TRUE(coord.Commit(&reader).ok());
  }
}

TEST(HlcSiTest, CommitTsIsMaxOfPrepareTs) {
  Cluster c(3, TsScheme::kHlcSi, {1000, 5000, 3000});
  TxnCoordinator coord(TsScheme::kHlcSi, &c.cn_hlc, &c.tso);
  DistributedTxn txn = coord.Begin();
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(coord.Insert(&txn, c.engine(i), kTable, {int64_t(i), int64_t(i)}).ok());
  }
  ASSERT_TRUE(coord.Commit(&txn).ok());
  // The fastest clock (shard 1 at 5000ms) dominates the commit timestamp.
  EXPECT_GE(hlc_layout::Pt(txn.commit_ts()), 5000u);
  // The coordinator clock absorbed the max.
  EXPECT_GE(c.cn_hlc.Peek(), txn.commit_ts());
}

TEST(HlcSiTest, VisibilityRuleMatchesPaperProof) {
  // Construct the §IV proof scenario directly: T2's snapshot is taken, then
  // T1 (still ACTIVE on the shared shard when T2 reads) must be invisible
  // and must receive commit_ts > T2.snapshot_ts.
  Cluster c(2, TsScheme::kHlcSi);
  TxnCoordinator coord(TsScheme::kHlcSi, &c.cn_hlc, &c.tso);
  {
    DistributedTxn init = coord.Begin();
    ASSERT_TRUE(coord.Insert(&init, c.engine(0), kTable, {int64_t{1}, int64_t{0}}).ok());
    ASSERT_TRUE(coord.Commit(&init).ok());
  }
  c.TickAll();
  DistributedTxn t1 = coord.Begin();
  ASSERT_TRUE(coord.Update(&t1, c.engine(0), kTable, {int64_t{1}, int64_t{111}}).ok());
  // T1 ACTIVE, not yet prepared.
  DistributedTxn t2 = coord.Begin();
  Row row;
  ASSERT_TRUE(coord.Read(&t2, c.engine(0), kTable, EncodeKey({int64_t{1}}), &row).ok());
  EXPECT_EQ(std::get<int64_t>(row[1]), 0) << "ACTIVE T1 must be invisible";
  // Force a second participant so commit runs full 2PC.
  ASSERT_TRUE(coord.Upsert(&t1, c.engine(1), kTable, {int64_t{9}, int64_t{9}}).ok());
  ASSERT_TRUE(coord.Commit(&t1).ok());
  EXPECT_GT(t1.commit_ts(), t2.snapshot_ts())
      << "paper invariant: T1.commit_ts > T2.snapshot_ts";
  ASSERT_TRUE(coord.Commit(&t2).ok());
}

TEST(TsoSiTest, EveryTxnCallsTso) {
  Cluster c(2, TsScheme::kTsoSi);
  TxnCoordinator coord(TsScheme::kTsoSi, &c.cn_hlc, &c.tso);
  for (int i = 0; i < 5; ++i) {
    c.TickAll();
    DistributedTxn txn = coord.Begin();
    ASSERT_TRUE(coord.Upsert(&txn, c.engine(0), kTable, {int64_t{1}, int64_t(i)}).ok());
    ASSERT_TRUE(coord.Upsert(&txn, c.engine(1), kTable, {int64_t{2}, int64_t(i)}).ok());
    ASSERT_TRUE(coord.Commit(&txn).ok());
  }
  // snapshot + commit per transaction.
  EXPECT_EQ(coord.stats().tso_calls, 10u);
  EXPECT_EQ(c.tso.requests_served(), 10u);
}

// Randomized multi-shard bank: transfers across shards, snapshot audits in
// between. Total balance must be invariant in every audit under both
// schemes and arbitrary clock skews.
struct BankParam {
  TsScheme scheme;
  uint64_t seed;
  std::vector<uint64_t> skews;
};

class DistributedBankTest : public ::testing::TestWithParam<BankParam> {};

TEST_P(DistributedBankTest, SnapshotAuditsAlwaysBalance) {
  const BankParam& p = GetParam();
  constexpr int kShards = 4;
  constexpr int kAccountsPerShard = 4;
  constexpr int64_t kInitial = 1000;
  Cluster c(kShards, p.scheme, p.skews);
  TxnCoordinator coord(p.scheme, &c.cn_hlc, &c.tso);
  {
    DistributedTxn init = coord.Begin();
    for (int s = 0; s < kShards; ++s) {
      for (int a = 0; a < kAccountsPerShard; ++a) {
        ASSERT_TRUE(coord
                        .Insert(&init, c.engine(s), kTable,
                                {int64_t(a), kInitial})
                        .ok());
      }
    }
    ASSERT_TRUE(coord.Commit(&init).ok());
  }

  Rng rng(p.seed);
  int committed = 0;
  for (int iter = 0; iter < 300; ++iter) {
    c.TickAll(rng.Uniform(3));
    if (rng.Bernoulli(0.25)) {
      DistributedTxn audit = coord.Begin();
      int64_t total = 0;
      for (int s = 0; s < kShards; ++s) {
        for (int a = 0; a < kAccountsPerShard; ++a) {
          Row row;
          ASSERT_TRUE(coord
                          .Read(&audit, c.engine(s), kTable,
                                EncodeKey({int64_t(a)}), &row)
                          .ok());
          total += std::get<int64_t>(row[1]);
        }
      }
      EXPECT_EQ(total, int64_t(kShards) * kAccountsPerShard * kInitial)
          << "iter " << iter;
      ASSERT_TRUE(coord.Commit(&audit).ok());
      continue;
    }
    int from_shard = int(rng.Uniform(kShards));
    int to_shard = int(rng.Uniform(kShards));
    int64_t from_acc = int64_t(rng.Uniform(kAccountsPerShard));
    int64_t to_acc = int64_t(rng.Uniform(kAccountsPerShard));
    if (from_shard == to_shard && from_acc == to_acc) continue;
    int64_t amount = rng.UniformRange(1, 20);
    DistributedTxn txn = coord.Begin();
    Row from_row, to_row;
    if (!coord.Read(&txn, c.engine(from_shard), kTable,
                    EncodeKey({from_acc}), &from_row)
             .ok() ||
        !coord.Read(&txn, c.engine(to_shard), kTable, EncodeKey({to_acc}),
                    &to_row)
             .ok()) {
      coord.Abort(&txn);
      continue;
    }
    Status s1 = coord.Update(&txn, c.engine(from_shard), kTable,
                             {from_acc, std::get<int64_t>(from_row[1]) - amount});
    Status s2 = coord.Update(&txn, c.engine(to_shard), kTable,
                             {to_acc, std::get<int64_t>(to_row[1]) + amount});
    if (!s1.ok() || !s2.ok()) {
      coord.Abort(&txn);
      continue;
    }
    if (coord.Commit(&txn).ok()) ++committed;
  }
  EXPECT_GT(committed, 50);
}

TEST(CoordinatorStatsTest, AbortsSplitByPreparePhase) {
  Cluster c(2);
  TxnCoordinator coord(TsScheme::kHlcSi, &c.cn_hlc, &c.tso);

  // Abort before any branch prepared: the cheap case, nothing in doubt.
  DistributedTxn t1 = coord.Begin();
  ASSERT_TRUE(coord.Upsert(&t1, c.engine(0), kTable, {int64_t{1}, int64_t{1}}).ok());
  ASSERT_TRUE(coord.Upsert(&t1, c.engine(1), kTable, {int64_t{2}, int64_t{2}}).ok());
  ASSERT_TRUE(coord.Abort(&t1).ok());
  EXPECT_EQ(coord.stats().aborted, 1u);
  EXPECT_EQ(coord.stats().aborts_before_prepare, 1u);
  EXPECT_EQ(coord.stats().aborts_after_prepare, 0u);

  // Abort after prepare: an in-doubt resolver presumed this coordinator
  // dead and won the commit-point race with an abort decision, so Commit
  // prepares both branches and then loses at DecideCommit. Record the abort
  // at both engines since either can be the commit owner.
  c.TickAll();
  DistributedTxn t2 = coord.Begin();
  ASSERT_TRUE(coord.Upsert(&t2, c.engine(0), kTable, {int64_t{3}, int64_t{3}}).ok());
  ASSERT_TRUE(coord.Upsert(&t2, c.engine(1), kTable, {int64_t{4}, int64_t{4}}).ok());
  ASSERT_TRUE(c.engine(0)->DecideAbort(t2.global_id()).ok());
  ASSERT_TRUE(c.engine(1)->DecideAbort(t2.global_id()).ok());
  EXPECT_TRUE(coord.Commit(&t2).IsAborted());
  EXPECT_EQ(coord.stats().aborted, 2u);
  EXPECT_EQ(coord.stats().aborts_before_prepare, 1u);
  EXPECT_EQ(coord.stats().aborts_after_prepare, 1u);

  // Recovery attribution is explicit, not inferred.
  EXPECT_EQ(coord.stats().recovery_resolved, 0u);
  coord.NoteRecoveryResolved(2);
  EXPECT_EQ(coord.stats().recovery_resolved, 2u);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesSeedsSkews, DistributedBankTest,
    ::testing::Values(
        BankParam{TsScheme::kHlcSi, 7, {}},
        BankParam{TsScheme::kHlcSi, 21, {500, 90000, 1000, 444}},
        BankParam{TsScheme::kHlcSi, 1234, {1, 1, 1, 1}},
        BankParam{TsScheme::kTsoSi, 7, {}},
        BankParam{TsScheme::kTsoSi, 21, {500, 90000, 1000, 444}}),
    [](const auto& info) {
      const BankParam& p = info.param;
      std::string name =
          p.scheme == TsScheme::kHlcSi ? "HlcSi" : "TsoSi";
      name += "_seed" + std::to_string(p.seed);
      name += p.skews.empty() ? "_noskew" : "_skewed";
      return name;
    });

}  // namespace
}  // namespace polarx
