// Tests for partitioning (§II-B), GMS planning, and PolarDB-MT tenant
// transfer (§V): bindings/leases, dictionary mastership, the transfer state
// machine (no data copy), and the data-copy baseline.
#include <gtest/gtest.h>

#include "src/gms/gms.h"
#include "src/mt/polardb_mt.h"
#include "src/partition/partition.h"

namespace polarx {
namespace {

// ---------- partition ----------

TEST(PartitionTest, ImplicitPrimaryKeyAdded) {
  TableDef def = MakeTableDef(1, "t", {{"a", ValueType::kString, true}}, {},
                              4);
  EXPECT_TRUE(def.implicit_pk);
  ASSERT_EQ(def.schema.num_columns(), 2u);
  EXPECT_EQ(def.schema.columns()[0].name, "__pk");
  EXPECT_EQ(def.schema.columns()[0].type, ValueType::kInt64);
  EXPECT_FALSE(def.schema.columns()[0].nullable);
  EXPECT_EQ(def.schema.key_columns(), (std::vector<uint32_t>{0}));
}

TEST(PartitionTest, ExplicitKeyKept) {
  TableDef def = MakeTableDef(
      1, "t",
      {{"id", ValueType::kInt64, false}, {"v", ValueType::kString, true}},
      {0}, 8);
  EXPECT_FALSE(def.implicit_pk);
  EXPECT_EQ(def.schema.num_columns(), 2u);
}

TEST(PartitionTest, RuleRoutesConsistently) {
  PartitionRule rule(16);
  Schema schema({{"id", ValueType::kInt64, false}}, {0});
  for (int64_t i = 0; i < 100; ++i) {
    ShardId s1 = rule.ShardOfRow(schema, {i});
    ShardId s2 = rule.ShardOfKey(EncodeKey({i}));
    EXPECT_EQ(s1, s2);
    EXPECT_LT(s1, 16u);
  }
}

TEST(PartitionTest, TableGroupRequiresMatchingShardCounts) {
  TableGroupRegistry reg;
  TableDef a = MakeTableDef(1, "orders", {{"id", ValueType::kInt64, false}},
                            {0}, 8);
  a.table_group = "g";
  TableDef b = MakeTableDef(2, "lines", {{"id", ValueType::kInt64, false}},
                            {0}, 8);
  b.table_group = "g";
  TableDef c = MakeTableDef(3, "bad", {{"id", ValueType::kInt64, false}},
                            {0}, 4);
  c.table_group = "g";
  EXPECT_TRUE(reg.Register(a).ok());
  EXPECT_TRUE(reg.Register(b).ok());
  EXPECT_FALSE(reg.Register(c).ok());
  EXPECT_TRUE(reg.Colocated(1, 2));
  EXPECT_FALSE(reg.Colocated(1, 3));
}

TEST(PartitionTest, PartitionGroupsSpanGroupTables) {
  TableGroupRegistry reg;
  for (TableId id : {1, 2, 3}) {
    TableDef def = MakeTableDef(id, "t" + std::to_string(id),
                                {{"id", ValueType::kInt64, false}}, {0}, 4);
    def.table_group = "g";
    ASSERT_TRUE(reg.Register(def).ok());
  }
  auto groups = reg.GroupsOf("g");
  ASSERT_EQ(groups.size(), 4u);  // one per shard
  for (const auto& pg : groups) {
    EXPECT_EQ(pg.tables.size(), 3u);
  }
}

// ---------- GMS ----------

TEST(GmsTest, CreateTableAssignsShardsToDns) {
  Gms gms;
  gms.RegisterDn(0);
  gms.RegisterDn(1);
  auto def = gms.CreateTable("users", {{"id", ValueType::kInt64, false}},
                             {0}, 8);
  ASSERT_TRUE(def.ok());
  int on0 = 0, on1 = 0;
  for (ShardId s = 0; s < 8; ++s) {
    auto dn = gms.DnOfShard(def->id, s);
    ASSERT_TRUE(dn.ok());
    (*dn == 0 ? on0 : on1)++;
  }
  EXPECT_EQ(on0, 4);
  EXPECT_EQ(on1, 4);
}

TEST(GmsTest, TableGroupMembersColocate) {
  Gms gms;
  gms.RegisterDn(0);
  gms.RegisterDn(1);
  gms.RegisterDn(2);
  auto a = gms.CreateTable("orders", {{"id", ValueType::kInt64, false}}, {0},
                           6, "g1");
  auto b = gms.CreateTable("lineitem", {{"id", ValueType::kInt64, false}},
                           {0}, 6, "g1");
  ASSERT_TRUE(a.ok() && b.ok());
  for (ShardId s = 0; s < 6; ++s) {
    EXPECT_EQ(*gms.DnOfShard(a->id, s), *gms.DnOfShard(b->id, s))
        << "partition group " << s << " must colocate";
  }
}

TEST(GmsTest, DuplicateTableRejected) {
  Gms gms;
  gms.RegisterDn(0);
  ASSERT_TRUE(
      gms.CreateTable("t", {{"id", ValueType::kInt64, false}}, {0}, 2).ok());
  EXPECT_FALSE(
      gms.CreateTable("t", {{"id", ValueType::kInt64, false}}, {0}, 2).ok());
}

TEST(GmsTest, GlobalIndexGetsHiddenTable) {
  Gms gms;
  gms.RegisterDn(0);
  ASSERT_TRUE(gms.CreateTable("t",
                              {{"id", ValueType::kInt64, false},
                               {"email", ValueType::kString, true}},
                              {0}, 4)
                  .ok());
  auto idx = gms.AddGlobalIndex("t", "by_email", {1}, /*clustered=*/true);
  ASSERT_TRUE(idx.ok());
  EXPECT_GT(idx->hidden_table, 0u);
  auto def = gms.FindTable("t");
  ASSERT_TRUE(def.ok());
  ASSERT_EQ(def->global_indexes.size(), 1u);
  EXPECT_TRUE(def->global_indexes[0].clustered);
}

TEST(GmsTest, SequencesAreMonotonicPerTable) {
  Gms gms;
  EXPECT_EQ(gms.NextSequence(1), 1);
  EXPECT_EQ(gms.NextSequence(1), 2);
  EXPECT_EQ(gms.NextSequence(2), 1);
}

TEST(GmsTest, RebalancePlanEqualizesTenantCounts) {
  Gms gms;
  uint32_t dn0 = gms.RegisterDn(0);
  for (TenantId t = 0; t < 8; ++t) {
    ASSERT_TRUE(gms.BindTenant(t, dn0).ok());
  }
  uint32_t dn1 = gms.RegisterDn(1);
  auto plan = gms.PlanRebalance();
  ASSERT_EQ(plan.size(), 4u) << "half the tenants move to the new DN";
  for (const auto& step : plan) {
    EXPECT_EQ(step.src_dn, dn0);
    EXPECT_EQ(step.dst_dn, dn1);
    ASSERT_TRUE(gms.CommitMigration(step).ok());
  }
  EXPECT_EQ(gms.TenantsOn(dn0).size(), 4u);
  EXPECT_EQ(gms.TenantsOn(dn1).size(), 4u);
  EXPECT_TRUE(gms.PlanRebalance().empty()) << "already balanced";
}

TEST(GmsTest, CommitMigrationValidatesSource) {
  Gms gms;
  uint32_t dn0 = gms.RegisterDn(0);
  uint32_t dn1 = gms.RegisterDn(0);
  ASSERT_TRUE(gms.BindTenant(1, dn0).ok());
  MigrationStep wrong{1, dn1, dn0};
  EXPECT_TRUE(gms.CommitMigration(wrong).IsConflict());
}

// ---------- PolarDB-MT ----------

Schema KvSchema() {
  return Schema({{"id", ValueType::kInt64, false},
                 {"val", ValueType::kString, true}},
                {0});
}

struct MtFixture {
  uint64_t now_ms = 1000;
  MtCluster cluster;

  MtFixture() : cluster([this] { return now_ms; }) {
    cluster.AddRwNode();
    cluster.AddRwNode();
  }

  TableStore* Setup(TenantId tenant, uint32_t rw, const std::string& table,
                    int rows) {
    EXPECT_TRUE(cluster.CreateTenant(tenant, rw).ok());
    auto ts = cluster.CreateTable(tenant, table, KvSchema());
    EXPECT_TRUE(ts.ok());
    auto routed = cluster.Route(tenant);
    EXPECT_TRUE(routed.ok());
    TxnEngine* engine = (*routed)->engine();
    TxnId txn = engine->Begin();
    for (int64_t i = 0; i < rows; ++i) {
      EXPECT_TRUE(engine->Insert(txn, (*ts)->id(),
                                 {i, std::string("v") + std::to_string(i)})
                      .ok());
    }
    EXPECT_TRUE(engine->CommitLocal(txn).ok());
    return *ts;
  }
};

TEST(MtTest, RoutingFollowsBindings) {
  MtFixture f;
  ASSERT_TRUE(f.cluster.CreateTenant(7, 1).ok());
  auto rw = f.cluster.Route(7);
  ASSERT_TRUE(rw.ok());
  EXPECT_EQ((*rw)->id(), 1u);
  EXPECT_TRUE(f.cluster.Route(99).status().IsNotFound());
}

TEST(MtTest, DdlRequiresTenantOwnership) {
  MtFixture f;
  ASSERT_TRUE(f.cluster.CreateTenant(1, 0).ok());
  DataDictionary::TableMeta meta{100, "x", KvSchema(), 1};
  // RW 1 does not own tenant 1.
  EXPECT_FALSE(
      f.cluster.dictionary()->ApplyDdl(1, *f.cluster.bindings(), meta).ok());
  EXPECT_TRUE(
      f.cluster.dictionary()->ApplyDdl(0, *f.cluster.bindings(), meta).ok());
}

TEST(MtTest, TransferMovesOwnershipWithoutCopy) {
  MtFixture f;
  TableStore* table = f.Setup(1, 0, "kv", 500);
  TableId tid = table->id();
  f.now_ms += 5;

  auto metrics = f.cluster.TransferTenant(1, 1);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->tables_moved, 1u);
  EXPECT_GT(metrics->pages_flushed, 0u) << "dirty pages drained to PolarFS";

  // Ownership moved; the very same TableStore object is now on RW 1.
  EXPECT_EQ(f.cluster.rw(0)->catalog()->FindTable(tid), nullptr);
  TableStore* moved = f.cluster.rw(1)->catalog()->FindTable(tid);
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved, table) << "shared storage: no data copy";
  EXPECT_EQ(moved->ApproxRows(), 500u);

  // New transactions route to the destination and see the data.
  auto rw = f.cluster.Route(1);
  ASSERT_TRUE(rw.ok());
  EXPECT_EQ((*rw)->id(), 1u);
  TxnId txn = (*rw)->engine()->Begin();
  Row row;
  EXPECT_TRUE(
      (*rw)->engine()->Read(txn, tid, EncodeKey({int64_t{42}}), &row).ok());
  EXPECT_TRUE((*rw)->engine()->CommitLocal(txn).ok());
}

TEST(MtTest, RoutingPausedDuringMigration) {
  MtFixture f;
  f.Setup(1, 0, "kv", 10);
  f.cluster.bindings()->SetMigrating(1, true);
  EXPECT_TRUE(f.cluster.Route(1).status().IsBusy());
  f.cluster.bindings()->SetMigrating(1, false);
  EXPECT_TRUE(f.cluster.Route(1).ok());
}

TEST(MtTest, TransferRefusedWithInflightWrites) {
  MtFixture f;
  f.Setup(1, 0, "kv", 10);
  f.cluster.rw(0)->NoteWriteBegin(1);
  EXPECT_TRUE(f.cluster.TransferTenant(1, 1).status().IsBusy());
  f.cluster.rw(0)->NoteWriteEnd(1);
  EXPECT_TRUE(f.cluster.TransferTenant(1, 1).ok());
}

TEST(MtTest, StaleLeaseDetectedAfterTransfer) {
  MtFixture f;
  f.Setup(1, 0, "kv", 10);
  f.Setup(2, 0, "kv2", 10);
  uint64_t v_before = f.cluster.rw(0)->cached_binding_version();
  ASSERT_TRUE(f.cluster.TransferTenant(1, 1).ok());
  // RW 0 still owns tenant 2; Route revalidates the (refreshed) lease.
  auto rw = f.cluster.Route(2);
  ASSERT_TRUE(rw.ok());
  EXPECT_EQ((*rw)->id(), 0u);
  EXPECT_GT(f.cluster.rw(0)->cached_binding_version(), v_before);
  // RW 0 no longer owns tenant 1.
  EXPECT_TRUE(
      f.cluster.rw(0)->CheckTenantLease(1, *f.cluster.bindings()).IsNotLeader());
}

TEST(MtTest, SeparateRwNodesWriteConcurrentlyWithoutConflict) {
  MtFixture f;
  TableStore* t1 = f.Setup(1, 0, "kv1", 0);
  TableStore* t2 = f.Setup(2, 1, "kv2", 0);
  // Disjoint tenants on different RW nodes: both write streams proceed with
  // private redo logs.
  TxnEngine* e0 = f.cluster.rw(0)->engine();
  TxnEngine* e1 = f.cluster.rw(1)->engine();
  TxnId a = e0->Begin();
  TxnId b = e1->Begin();
  ASSERT_TRUE(e0->Insert(a, t1->id(), {int64_t{1}, std::string("x")}).ok());
  ASSERT_TRUE(e1->Insert(b, t2->id(), {int64_t{1}, std::string("y")}).ok());
  ASSERT_TRUE(e0->CommitLocal(a).ok());
  ASSERT_TRUE(e1->CommitLocal(b).ok());
  EXPECT_GT(f.cluster.rw(0)->redo_log()->current_lsn(), 1u);
  EXPECT_GT(f.cluster.rw(1)->redo_log()->current_lsn(), 1u);
}

TEST(MtTest, CopyBaselineMovesEveryRow) {
  MtFixture f;
  TableStore* table = f.Setup(1, 0, "kv", 300);
  TableId tid = table->id();
  auto rows = f.cluster.CopyTenantBaseline(1, 1);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, 300u) << "baseline must copy the data volume";
  TableStore* dst_table = f.cluster.rw(1)->catalog()->FindTable(tid);
  ASSERT_NE(dst_table, nullptr);
  EXPECT_NE(dst_table, table) << "baseline creates a fresh physical table";
  EXPECT_EQ(dst_table->ApproxRows(), 300u);
  auto rw = f.cluster.Route(1);
  ASSERT_TRUE(rw.ok());
  EXPECT_EQ((*rw)->id(), 1u);
}

TEST(MtTest, MtScaleOutViaGmsPlan) {
  // End-to-end §V scale-out: 1 RW with 6 tenants -> add an RW -> GMS plans
  // -> transfers execute -> both RWs serve their halves.
  MtFixture f;  // 2 RWs already; use rw0 only initially
  Gms gms;
  uint32_t dn0 = gms.RegisterDn(0);
  std::map<TenantId, TableId> tenant_tables;
  for (TenantId t = 10; t < 16; ++t) {
    TableStore* ts = f.Setup(t, 0, "kv" + std::to_string(t), 20);
    tenant_tables[t] = ts->id();
    ASSERT_TRUE(gms.BindTenant(t, dn0).ok());
  }
  uint32_t dn1 = gms.RegisterDn(0);
  (void)dn1;
  auto plan = gms.PlanRebalance();
  ASSERT_EQ(plan.size(), 3u);
  for (const auto& step : plan) {
    ASSERT_TRUE(f.cluster.TransferTenant(step.tenant, 1).ok());
    ASSERT_TRUE(gms.CommitMigration(step).ok());
  }
  EXPECT_EQ(f.cluster.bindings()->TenantsOf(0).size(), 3u);
  EXPECT_EQ(f.cluster.bindings()->TenantsOf(1).size(), 3u);
  // Every tenant still serves reads from its new home.
  for (const auto& [tenant, tid] : tenant_tables) {
    auto rw = f.cluster.Route(tenant);
    ASSERT_TRUE(rw.ok());
    TxnId txn = (*rw)->engine()->Begin();
    Row row;
    EXPECT_TRUE(
        (*rw)->engine()->Read(txn, tid, EncodeKey({int64_t{5}}), &row).ok())
        << "tenant " << tenant;
    (*rw)->engine()->CommitLocal(txn);
  }
}

}  // namespace
}  // namespace polarx
