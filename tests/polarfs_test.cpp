// Tests for the PolarFS model: chunk provisioning/placement, volume writes
// fanning to replicas, the PageStore adapter, and ParallelRaft's
// out-of-order acknowledgment rules.
#include <gtest/gtest.h>

#include "src/polarfs/parallel_raft.h"
#include "src/polarfs/polarfs.h"

namespace polarx {
namespace {

PolarFsOptions SmallChunks() {
  PolarFsOptions o;
  o.chunk_size_bytes = 1 << 20;  // 1 MB chunks for tests
  o.replicas_per_chunk = 3;
  return o;
}

TEST(PolarFsTest, VolumeNeedsEnoughServers) {
  PolarFs fs(SmallChunks());
  fs.AddChunkServer();
  fs.AddChunkServer();
  EXPECT_FALSE(fs.CreateVolume().ok());
  fs.AddChunkServer();
  EXPECT_TRUE(fs.CreateVolume().ok());
}

TEST(PolarFsTest, ChunksProvisionedOnDemand) {
  PolarFs fs(SmallChunks());
  for (int i = 0; i < 4; ++i) fs.AddChunkServer();
  auto vol = fs.CreateVolume();
  ASSERT_TRUE(vol.ok());
  EXPECT_EQ((*vol)->num_chunks(), 0u);
  // A write beyond the current size grows the volume.
  ASSERT_TRUE(fs.Write((*vol)->id(), 0, 100).ok());
  EXPECT_EQ((*vol)->num_chunks(), 1u);
  ASSERT_TRUE(fs.Write((*vol)->id(), (3 << 20) - 10, 20).ok());
  EXPECT_EQ((*vol)->num_chunks(), 4u) << "write spanning into 4th MB";
}

TEST(PolarFsTest, EachChunkHasThreeReplicas) {
  PolarFs fs(SmallChunks());
  for (int i = 0; i < 5; ++i) fs.AddChunkServer();
  auto vol = fs.CreateVolume();
  ASSERT_TRUE(vol.ok());
  ASSERT_TRUE(fs.Write((*vol)->id(), 0, 1).ok());
  for (const auto& [id, info] : fs.chunks()) {
    EXPECT_EQ(info.replicas.size(), 3u);
  }
}

TEST(PolarFsTest, PlacementBalancesAcrossServers) {
  PolarFs fs(SmallChunks());
  for (int i = 0; i < 6; ++i) fs.AddChunkServer();
  auto vol = fs.CreateVolume();
  ASSERT_TRUE(vol.ok());
  // 12 chunks * 3 replicas over 6 servers => 6 replicas each.
  ASSERT_TRUE(fs.Write((*vol)->id(), 0, 12ULL << 20).ok());
  for (const auto& server : fs.servers()) {
    EXPECT_EQ(server->NumReplicas(), 6u) << "server " << server->id();
  }
}

TEST(PolarFsTest, WriteFansOutToAllReplicas) {
  PolarFs fs(SmallChunks());
  for (int i = 0; i < 3; ++i) fs.AddChunkServer();
  auto vol = fs.CreateVolume();
  ASSERT_TRUE(vol.ok());
  ASSERT_TRUE(fs.Write((*vol)->id(), 0, 1000).ok());
  // 3 servers each hold one replica of the single chunk: 1000 bytes each.
  for (const auto& server : fs.servers()) {
    EXPECT_EQ(server->bytes_stored(), 1000u);
  }
  EXPECT_EQ(fs.total_bytes_written(), 1000u);
}

TEST(PolarFsTest, CrossChunkWriteSplits) {
  PolarFs fs(SmallChunks());
  for (int i = 0; i < 3; ++i) fs.AddChunkServer();
  auto vol = fs.CreateVolume();
  ASSERT_TRUE(vol.ok());
  uint64_t chunk = 1 << 20;
  ASSERT_TRUE(fs.Write((*vol)->id(), chunk - 100, 200).ok());
  EXPECT_EQ((*vol)->num_chunks(), 2u);
  uint64_t sum = 0;
  for (const auto& [id, info] : fs.chunks()) sum += info.bytes_written;
  EXPECT_EQ(sum, 200u);
}

TEST(PolarFsTest, CheckReadBounds) {
  PolarFs fs(SmallChunks());
  for (int i = 0; i < 3; ++i) fs.AddChunkServer();
  auto vol = fs.CreateVolume();
  ASSERT_TRUE(vol.ok());
  ASSERT_TRUE(fs.Write((*vol)->id(), 0, 100).ok());
  EXPECT_TRUE(fs.CheckRead((*vol)->id(), 0, 1 << 20).ok());
  EXPECT_FALSE(fs.CheckRead((*vol)->id(), 0, (1 << 20) + 1).ok());
  EXPECT_FALSE(fs.CheckRead(999, 0, 1).ok());
}

TEST(PolarFsTest, PageStoreAdapterWritesVolume) {
  PolarFs fs(SmallChunks());
  for (int i = 0; i < 3; ++i) fs.AddChunkServer();
  auto vol = fs.CreateVolume();
  ASSERT_TRUE(vol.ok());
  PolarFsPageStore store(&fs, (*vol)->id());
  BufferPool pool(&store);
  pool.MarkDirty(MakePageId(1, 5), 100);
  pool.FlushUpTo(1000);
  EXPECT_EQ(store.pages_written(), 1u);
  EXPECT_GT(fs.total_bytes_written(), 0u);
}

// ---------- ParallelRaft ----------

TEST(ParallelRaftTest, InOrderDeliveryAcksImmediately) {
  ParallelRaftLeader leader;
  uint64_t i1 = leader.Append(0, 8);
  uint64_t i2 = leader.Append(100, 8);
  EXPECT_TRUE(leader.IsCommitted(i1));
  EXPECT_TRUE(leader.IsCommitted(i2));
  EXPECT_EQ(leader.follower(0)->in_order_acks(), 2u);
  EXPECT_EQ(leader.follower(0)->out_of_order_acks(), 0u);
}

TEST(ParallelRaftTest, OutOfOrderNonOverlappingAcks) {
  // Drop entry 1 to follower 0; entry 2 (disjoint LBA) must still be acked
  // out of order — the heart of ParallelRaft.
  ParallelRaftLeader leader;
  std::vector<PrEntry> held;
  bool drop_next = true;
  leader.SetDelivery(0, [&](const PrEntry& e) {
    if (drop_next) {
      drop_next = false;
      held.push_back(e);
      return false;
    }
    return leader.follower(0)->Receive(e);
  });
  uint64_t i1 = leader.Append(0, 8);     // dropped to follower 0
  uint64_t i2 = leader.Append(1000, 8);  // disjoint: acked out of order
  EXPECT_TRUE(leader.follower(0)->Has(i2));
  EXPECT_FALSE(leader.follower(0)->Has(i1));
  EXPECT_EQ(leader.follower(0)->out_of_order_acks(), 1u);
  // Both committed: follower 1 plus leader form a majority for i1; i2 has
  // all three.
  EXPECT_TRUE(leader.IsCommitted(i1));
  EXPECT_TRUE(leader.IsCommitted(i2));
  // Late redelivery of the hole.
  EXPECT_TRUE(leader.follower(0)->Receive(held[0]));
  EXPECT_EQ(leader.follower(0)->contiguous_index(), 2u);
}

TEST(ParallelRaftTest, OverlappingHoleBlocksAck) {
  // Entry 2 overlaps missing entry 1's blocks: follower must NOT ack it
  // until the hole is filled.
  ParallelRaftLeader leader;
  std::vector<PrEntry> held;
  bool drop_next = true;
  leader.SetDelivery(0, [&](const PrEntry& e) {
    if (drop_next) {
      drop_next = false;
      held.push_back(e);
      return false;
    }
    return leader.follower(0)->Receive(e);
  });
  uint64_t i1 = leader.Append(0, 8);  // dropped
  uint64_t i2 = leader.Append(4, 8);  // overlaps blocks [4,8) of entry 1
  EXPECT_FALSE(leader.follower(0)->Has(i2)) << "conflicting hole must block";
  // Filling the hole releases the pending entry automatically.
  EXPECT_TRUE(leader.follower(0)->Receive(held[0]));
  EXPECT_TRUE(leader.follower(0)->Has(i1));
  EXPECT_TRUE(leader.follower(0)->Has(i2));
  EXPECT_EQ(leader.follower(0)->contiguous_index(), 2u);
}

TEST(ParallelRaftTest, LookBehindWindowBoundsReordering) {
  ParallelRaftOptions opts;
  opts.look_behind = 2;
  ParallelRaftLeader leader(opts);
  int dropped = 0;
  std::vector<PrEntry> held;
  leader.SetDelivery(0, [&](const PrEntry& e) {
    if (dropped < 3) {
      ++dropped;
      held.push_back(e);
      return false;
    }
    return leader.follower(0)->Receive(e);
  });
  for (int i = 0; i < 3; ++i) leader.Append(uint64_t(i) * 100, 8);
  // Entry 4 is 3 positions beyond the contiguous point with window 2:
  // cannot validate, must be refused.
  uint64_t i4 = leader.Append(9999, 8);
  EXPECT_FALSE(leader.follower(0)->Has(i4));
}

TEST(ParallelRaftTest, MajorityCommitWithOneFollowerDown) {
  ParallelRaftLeader leader;
  leader.SetDelivery(1, [](const PrEntry&) { return false; });  // f1 dead
  uint64_t idx = leader.Append(0, 8);
  EXPECT_TRUE(leader.IsCommitted(idx)) << "leader + follower 0 = majority";
}

TEST(ParallelRaftTest, NoCommitWithoutMajority) {
  ParallelRaftLeader leader;
  leader.SetDelivery(0, [](const PrEntry&) { return false; });
  leader.SetDelivery(1, [](const PrEntry&) { return false; });
  uint64_t idx = leader.Append(0, 8);
  EXPECT_FALSE(leader.IsCommitted(idx));
}

}  // namespace
}  // namespace polarx
