// Unit tests for the runtime-filter layer (DESIGN.md §9): the seeded bloom
// filter, the cell/row key hashing shared by the row and column join paths,
// min/max bounds, the build-side filter builder, and the ablation counters.
#include <gtest/gtest.h>

#include "src/exec/runtime_filter.h"

namespace polarx {
namespace {

TEST(BloomFilterTest, NoFalseNegativesOverManyKeys) {
  BloomFilter bloom(50000, kKeyHashSeed);
  for (int64_t i = 0; i < 50000; ++i) bloom.Add(Int64CellHash(i));
  for (int64_t i = 0; i < 50000; ++i) {
    ASSERT_TRUE(bloom.MightContain(Int64CellHash(i))) << i;
  }
}

TEST(BloomFilterTest, DeterministicForSeedAndKeySet) {
  BloomFilter a(1000, 42), b(1000, 42), other_seed(1000, 43);
  for (int64_t i = 0; i < 1000; ++i) {
    a.Add(Int64CellHash(i * 3));
    b.Add(Int64CellHash(i * 3));
    other_seed.Add(Int64CellHash(i * 3));
  }
  bool seeds_differ_somewhere = false;
  for (int64_t i = 0; i < 20000; ++i) {
    uint64_t h = Int64CellHash(1000000 + i);
    EXPECT_EQ(a.MightContain(h), b.MightContain(h))
        << "same (seed, keys) must answer identically";
    seeds_differ_somewhere |=
        a.MightContain(h) != other_seed.MightContain(h);
  }
  EXPECT_TRUE(seeds_differ_somewhere)
      << "different seeds should disagree on some absent keys";
}

TEST(BloomFilterTest, FalsePositiveRateIsSmallWhenSizedRight) {
  BloomFilter bloom(4096, kKeyHashSeed);
  for (int64_t i = 0; i < 4096; ++i) bloom.Add(Int64CellHash(i));
  int fp = 0;
  const int probes = 100000;
  for (int64_t i = 0; i < probes; ++i) {
    if (bloom.MightContain(Int64CellHash(1000000 + i))) ++fp;
  }
  // ~10 bits/key with 6 probes gives well under 2% FP; allow slack.
  EXPECT_LT(double(fp) / probes, 0.05);
}

TEST(BloomFilterTest, DefaultPassesAllSizedEmptyPassesNone) {
  BloomFilter unknown;  // no information: must not drop anything
  EXPECT_TRUE(unknown.MightContain(Int64CellHash(7)));
  BloomFilter empty(16, kKeyHashSeed);  // zero keys added: nothing matches
  EXPECT_FALSE(empty.MightContain(Int64CellHash(7)));
}

TEST(CellHashTest, TypesNeverAlias) {
  // int64 5, double 5.0, string "5", and NULL must occupy disjoint hash
  // values (their memcomparable encodings differ, so equality is false).
  Value i = int64_t{5}, d = 5.0, s = std::string("5"), n = Value{};
  EXPECT_NE(CellHash(i), CellHash(d));
  EXPECT_NE(CellHash(i), CellHash(s));
  EXPECT_NE(CellHash(i), CellHash(n));
  EXPECT_NE(CellHash(d), CellHash(s));
  EXPECT_FALSE(CellEquals(i, d));
  EXPECT_TRUE(CellEquals(n, Value{}));  // NULL == NULL, as in HashJoinOp
  EXPECT_TRUE(CellEquals(i, Value{int64_t{5}}));
}

TEST(RuntimeFilterTest, BoundsRejectBeforeBloom) {
  RuntimeFilter rf;
  rf.bloom = BloomFilter(16, kKeyHashSeed);
  for (int64_t k : {100, 150, 200}) {
    rf.bloom.Add(RowKeyHash({Value{k}}, {0}));
  }
  rf.has_bounds = true;
  rf.min_key = 100;
  rf.max_key = 200;
  EXPECT_TRUE(rf.TestKey(150, RowKeyHash({Value{int64_t{150}}}, {0})));
  // Outside the bounds: rejected even if the bloom were saturated.
  EXPECT_FALSE(rf.TestKey(99, RowKeyHash({Value{int64_t{99}}}, {0})));
  EXPECT_FALSE(rf.TestKey(201, RowKeyHash({Value{int64_t{201}}}, {0})));
  // Inside the bounds but not in the key set: the bloom decides.
  EXPECT_FALSE(rf.TestRow({Value{int64_t{137}}}, {0}));
  EXPECT_TRUE(rf.TestRow({Value{int64_t{200}}}, {0}));
}

TEST(RuntimeFilterBuilderTest, SingleIntKeysGetBounds) {
  RuntimeFilterBuilder builder(8, kKeyHashSeed);
  for (int64_t k : {42, -7, 300}) {
    builder.AddKey({Value{k}}, {0});
  }
  auto rf = builder.Finish();
  EXPECT_TRUE(rf->has_bounds);
  EXPECT_EQ(rf->min_key, -7);
  EXPECT_EQ(rf->max_key, 300);
  EXPECT_EQ(rf->num_build_keys, 3u);
  EXPECT_TRUE(rf->TestRow({Value{int64_t{42}}}, {0}));
  EXPECT_FALSE(rf->TestRow({Value{int64_t{1000}}}, {0}));
}

TEST(RuntimeFilterBuilderTest, BoundsDisabledWhenNotPureInt64) {
  // String key: no bounds, bloom still exact for inserted keys.
  RuntimeFilterBuilder strings(8, kKeyHashSeed);
  strings.AddKey({Value{std::string("x")}}, {0});
  auto rf_s = strings.Finish();
  EXPECT_FALSE(rf_s->has_bounds);
  EXPECT_TRUE(rf_s->TestRow({Value{std::string("x")}}, {0}));

  // Multi-column key: no bounds.
  RuntimeFilterBuilder multi(8, kKeyHashSeed);
  multi.AddKey({Value{int64_t{1}}, Value{int64_t{2}}}, {0, 1});
  EXPECT_FALSE(multi.Finish()->has_bounds);

  // A NULL among int64 keys: bounds must be dropped (the NULL carries no
  // order), but the NULL key itself must still pass the bloom.
  RuntimeFilterBuilder with_null(8, kKeyHashSeed);
  with_null.AddKey({Value{int64_t{5}}}, {0});
  with_null.AddKey({Value{}}, {0});
  auto rf_n = with_null.Finish();
  EXPECT_FALSE(rf_n->has_bounds);
  EXPECT_TRUE(rf_n->TestRow({Value{}}, {0}));
  EXPECT_TRUE(rf_n->TestRow({Value{int64_t{5}}}, {0}));
}

TEST(RuntimeFilterStatsTest, CountersAccumulateAndReset) {
  ResetRuntimeFilterStats();
  AddScanFilterStats(100, 40);
  AddScanFilterStats(50, 0);
  AddJoinProbeRows(60);
  RuntimeFilterStats s = ReadRuntimeFilterStats();
  EXPECT_EQ(s.scan_rows_tested, 150u);
  EXPECT_EQ(s.scan_rows_dropped, 40u);
  EXPECT_EQ(s.join_probe_rows, 60u);
  ResetRuntimeFilterStats();
  s = ReadRuntimeFilterStats();
  EXPECT_EQ(s.scan_rows_tested, 0u);
  EXPECT_EQ(s.join_probe_rows, 0u);
}

}  // namespace
}  // namespace polarx
