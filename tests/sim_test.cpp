// Unit tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/network.h"
#include "src/sim/resource.h"
#include "src/sim/scheduler.h"

namespace polarx::sim {
namespace {

TEST(SchedulerTest, EventsFireInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.ScheduleAt(30, [&] { order.push_back(3); });
  sched.ScheduleAt(10, [&] { order.push_back(1); });
  sched.ScheduleAt(20, [&] { order.push_back(2); });
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.Now(), 30u);
}

TEST(SchedulerTest, SameTimeIsFifo) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sched.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, HandlersCanScheduleMoreEvents) {
  Scheduler sched;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sched.ScheduleAfter(10, chain);
  };
  sched.ScheduleAfter(10, chain);
  sched.Run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sched.Now(), 50u);
}

TEST(SchedulerTest, PastEventsClampToNow) {
  Scheduler sched;
  sched.ScheduleAt(100, [] {});
  sched.Run();
  bool ran = false;
  sched.ScheduleAt(50, [&] { ran = true; });  // in the past
  sched.Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sched.Now(), 100u);
}

TEST(SchedulerTest, RunUntilStopsAtDeadline) {
  Scheduler sched;
  int fired = 0;
  sched.ScheduleAt(10, [&] { ++fired; });
  sched.ScheduleAt(20, [&] { ++fired; });
  sched.ScheduleAt(30, [&] { ++fired; });
  sched.RunUntil(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sched.Now(), 20u);
  EXPECT_EQ(sched.PendingEvents(), 1u);
  sched.Run();
  EXPECT_EQ(fired, 3);
}

TEST(SchedulerTest, RunUntilAdvancesTimeWithoutEvents) {
  Scheduler sched;
  sched.RunUntil(1000);
  EXPECT_EQ(sched.Now(), 1000u);
}

TEST(NetworkTest, IntraDcFasterThanInterDc) {
  Scheduler sched;
  NetworkConfig cfg;
  cfg.jitter = 0;
  Network net(&sched, cfg);
  NodeId a = net.AddNode(0), b = net.AddNode(0), c = net.AddNode(1);
  SimTime t_ab = 0, t_ac = 0;
  net.Send(a, b, 0, [&] { t_ab = sched.Now(); });
  net.Send(a, c, 0, [&] { t_ac = sched.Now(); });
  sched.Run();
  EXPECT_EQ(t_ab, cfg.intra_dc_one_way_us);
  EXPECT_EQ(t_ac, cfg.inter_dc_one_way_us);
}

TEST(NetworkTest, PayloadSizeAddsTransmissionDelay) {
  Scheduler sched;
  NetworkConfig cfg;
  cfg.jitter = 0;
  cfg.bytes_per_us = 100;
  Network net(&sched, cfg);
  NodeId a = net.AddNode(0), b = net.AddNode(0);
  SimTime small = 0, large = 0;
  net.Send(a, b, 0, [&] { small = sched.Now(); });
  sched.Run();
  net.Send(a, b, 100000, [&] { large = sched.Now() - small; });
  sched.Run();
  EXPECT_EQ(large, cfg.intra_dc_one_way_us + 1000);
}

TEST(NetworkTest, DownNodeDropsMessages) {
  Scheduler sched;
  Network net(&sched, {});
  NodeId a = net.AddNode(0), b = net.AddNode(0);
  net.SetNodeUp(b, false);
  bool delivered = false;
  net.Send(a, b, 0, [&] { delivered = true; });
  sched.Run();
  EXPECT_FALSE(delivered);

  net.SetNodeUp(b, true);
  net.Send(a, b, 0, [&] { delivered = true; });
  sched.Run();
  EXPECT_TRUE(delivered);
}

TEST(NetworkTest, CrashWhileInFlightDropsDelivery) {
  Scheduler sched;
  Network net(&sched, {});
  NodeId a = net.AddNode(0), b = net.AddNode(1);
  bool delivered = false;
  net.Send(a, b, 0, [&] { delivered = true; });
  // Crash b before the message arrives.
  sched.ScheduleAt(1, [&] { net.SetNodeUp(b, false); });
  sched.Run();
  EXPECT_FALSE(delivered);
}

TEST(NetworkTest, DcOutageDisablesAllItsNodes) {
  Scheduler sched;
  Network net(&sched, {});
  NodeId a = net.AddNode(0), b = net.AddNode(1), c = net.AddNode(1);
  net.SetDcUp(1, false);
  EXPECT_TRUE(net.IsNodeUp(a));
  EXPECT_FALSE(net.IsNodeUp(b));
  EXPECT_FALSE(net.IsNodeUp(c));
  int delivered = 0;
  net.Send(a, b, 0, [&] { ++delivered; });
  net.Send(b, c, 0, [&] { ++delivered; });
  sched.Run();
  EXPECT_EQ(delivered, 0);
}

TEST(NetworkTest, CountsTraffic) {
  Scheduler sched;
  Network net(&sched, {});
  NodeId a = net.AddNode(0), b = net.AddNode(0);
  net.Send(a, b, 100, [] {});
  net.Send(a, b, 200, [] {});
  sched.Run();
  EXPECT_EQ(net.messages_sent(), 2u);
  EXPECT_EQ(net.bytes_sent(), 300u);
}

TEST(ServerTest, LimitsConcurrency) {
  Scheduler sched;
  Server server(&sched, 2);
  std::vector<SimTime> finish;
  for (int i = 0; i < 4; ++i) {
    server.Execute(100, [&] { finish.push_back(sched.Now()); });
  }
  sched.Run();
  ASSERT_EQ(finish.size(), 4u);
  // Two at t=100, the queued two at t=200.
  EXPECT_EQ(finish[0], 100u);
  EXPECT_EQ(finish[1], 100u);
  EXPECT_EQ(finish[2], 200u);
  EXPECT_EQ(finish[3], 200u);
}

TEST(ServerTest, TracksBusyTime) {
  Scheduler sched;
  Server server(&sched, 1);
  server.Execute(30, [] {});
  server.Execute(70, [] {});
  sched.Run();
  EXPECT_EQ(server.busy_time_us(), 100u);
  EXPECT_EQ(server.busy_cores(), 0u);
}

TEST(ServerTest, WorkSubmittedFromCompletionRuns) {
  Scheduler sched;
  Server server(&sched, 1);
  bool second_done = false;
  server.Execute(10, [&] {
    server.Execute(10, [&] { second_done = true; });
  });
  sched.Run();
  EXPECT_TRUE(second_done);
  EXPECT_EQ(sched.Now(), 20u);
}

}  // namespace
}  // namespace polarx::sim
