// Unit tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/fault_injector.h"
#include "src/sim/network.h"
#include "src/sim/resource.h"
#include "src/sim/scheduler.h"

namespace polarx::sim {
namespace {

TEST(SchedulerTest, EventsFireInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.ScheduleAt(30, [&] { order.push_back(3); });
  sched.ScheduleAt(10, [&] { order.push_back(1); });
  sched.ScheduleAt(20, [&] { order.push_back(2); });
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.Now(), 30u);
}

TEST(SchedulerTest, SameTimeIsFifo) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sched.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, HandlersCanScheduleMoreEvents) {
  Scheduler sched;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sched.ScheduleAfter(10, chain);
  };
  sched.ScheduleAfter(10, chain);
  sched.Run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sched.Now(), 50u);
}

TEST(SchedulerTest, PastEventsClampToNow) {
  Scheduler sched;
  sched.ScheduleAt(100, [] {});
  sched.Run();
  bool ran = false;
  sched.ScheduleAt(50, [&] { ran = true; });  // in the past
  sched.Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sched.Now(), 100u);
}

TEST(SchedulerTest, RunUntilStopsAtDeadline) {
  Scheduler sched;
  int fired = 0;
  sched.ScheduleAt(10, [&] { ++fired; });
  sched.ScheduleAt(20, [&] { ++fired; });
  sched.ScheduleAt(30, [&] { ++fired; });
  sched.RunUntil(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sched.Now(), 20u);
  EXPECT_EQ(sched.PendingEvents(), 1u);
  sched.Run();
  EXPECT_EQ(fired, 3);
}

TEST(SchedulerTest, RunUntilAdvancesTimeWithoutEvents) {
  Scheduler sched;
  sched.RunUntil(1000);
  EXPECT_EQ(sched.Now(), 1000u);
}

TEST(NetworkTest, IntraDcFasterThanInterDc) {
  Scheduler sched;
  NetworkConfig cfg;
  cfg.jitter = 0;
  Network net(&sched, cfg);
  NodeId a = net.AddNode(0), b = net.AddNode(0), c = net.AddNode(1);
  SimTime t_ab = 0, t_ac = 0;
  net.Send(a, b, 0, [&] { t_ab = sched.Now(); });
  net.Send(a, c, 0, [&] { t_ac = sched.Now(); });
  sched.Run();
  EXPECT_EQ(t_ab, cfg.intra_dc_one_way_us);
  EXPECT_EQ(t_ac, cfg.inter_dc_one_way_us);
}

TEST(NetworkTest, PayloadSizeAddsTransmissionDelay) {
  Scheduler sched;
  NetworkConfig cfg;
  cfg.jitter = 0;
  cfg.bytes_per_us = 100;
  Network net(&sched, cfg);
  NodeId a = net.AddNode(0), b = net.AddNode(0);
  SimTime small = 0, large = 0;
  net.Send(a, b, 0, [&] { small = sched.Now(); });
  sched.Run();
  net.Send(a, b, 100000, [&] { large = sched.Now() - small; });
  sched.Run();
  EXPECT_EQ(large, cfg.intra_dc_one_way_us + 1000);
}

TEST(NetworkTest, DownNodeDropsMessages) {
  Scheduler sched;
  Network net(&sched, {});
  NodeId a = net.AddNode(0), b = net.AddNode(0);
  net.SetNodeUp(b, false);
  bool delivered = false;
  net.Send(a, b, 0, [&] { delivered = true; });
  sched.Run();
  EXPECT_FALSE(delivered);

  net.SetNodeUp(b, true);
  net.Send(a, b, 0, [&] { delivered = true; });
  sched.Run();
  EXPECT_TRUE(delivered);
}

TEST(NetworkTest, CrashWhileInFlightDropsDelivery) {
  Scheduler sched;
  Network net(&sched, {});
  NodeId a = net.AddNode(0), b = net.AddNode(1);
  bool delivered = false;
  net.Send(a, b, 0, [&] { delivered = true; });
  // Crash b before the message arrives: the liveness check must run at
  // delivery time, not just at send time.
  sched.ScheduleAt(1, [&] { net.SetNodeUp(b, false); });
  sched.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.messages_dropped(), 1u);
}

TEST(NetworkTest, CrashAndRestartWhileInFlightStillDrops) {
  // The destination crashes AND restarts while the message is in flight: a
  // liveness-only delivery check would wrongly deliver to the new
  // incarnation; the incarnation guard must drop it.
  Scheduler sched;
  Network net(&sched, {});
  NodeId a = net.AddNode(0), b = net.AddNode(1);  // inter-DC: 500us in flight
  bool delivered = false;
  net.Send(a, b, 0, [&] { delivered = true; });
  sched.ScheduleAt(1, [&] { net.SetNodeUp(b, false); });
  sched.ScheduleAt(2, [&] { net.SetNodeUp(b, true); });
  sched.Run();
  EXPECT_FALSE(delivered) << "message addressed to the crashed incarnation";
  EXPECT_EQ(net.IncarnationOf(b), 1u);

  // Messages sent to the new incarnation flow normally.
  net.Send(a, b, 0, [&] { delivered = true; });
  sched.Run();
  EXPECT_TRUE(delivered);
}

TEST(NetworkTest, DcCrashBumpsIncarnations) {
  Scheduler sched;
  Network net(&sched, {});
  NodeId a = net.AddNode(0), b = net.AddNode(1), c = net.AddNode(1);
  bool delivered = false;
  net.Send(a, b, 0, [&] { delivered = true; });
  sched.ScheduleAt(1, [&] { net.SetDcUp(1, false); });
  sched.ScheduleAt(2, [&] { net.SetDcUp(1, true); });
  sched.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.IncarnationOf(b), 1u);
  EXPECT_EQ(net.IncarnationOf(c), 1u);
  EXPECT_EQ(net.IncarnationOf(a), 0u);
}

TEST(NetworkFaultTest, DropProbabilityOneDropsEverything) {
  Scheduler sched;
  Network net(&sched, {});
  NodeId a = net.AddNode(0), b = net.AddNode(0);
  LinkFault fault;
  fault.drop_prob = 1.0;
  net.SetLinkFault(a, b, fault);
  int delivered = 0;
  for (int i = 0; i < 10; ++i) net.Send(a, b, 0, [&] { ++delivered; });
  sched.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.messages_dropped(), 10u);
  // The reverse direction is unaffected (faults are directional).
  net.Send(b, a, 0, [&] { ++delivered; });
  sched.Run();
  EXPECT_EQ(delivered, 1);
}

TEST(NetworkFaultTest, DuplicationDeliversTwice) {
  Scheduler sched;
  Network net(&sched, {});
  NodeId a = net.AddNode(0), b = net.AddNode(0);
  LinkFault fault;
  fault.dup_prob = 1.0;
  net.SetLinkFault(a, b, fault);
  int delivered = 0;
  net.Send(a, b, 0, [&] { ++delivered; });
  sched.Run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(net.messages_duplicated(), 1u);
}

TEST(NetworkFaultTest, DelaySpikeAddsLatency) {
  Scheduler sched;
  NetworkConfig cfg;
  cfg.jitter = 0;
  Network net(&sched, cfg);
  NodeId a = net.AddNode(0), b = net.AddNode(0);
  LinkFault fault;
  fault.delay_spike_prob = 1.0;
  fault.delay_spike_us = 10000;
  net.SetLinkFault(a, b, fault);
  SimTime at = 0;
  net.Send(a, b, 0, [&] { at = sched.Now(); });
  sched.Run();
  EXPECT_EQ(at, cfg.intra_dc_one_way_us + 10000);
}

TEST(NetworkFaultTest, BlockedLinkAndClearFaults) {
  Scheduler sched;
  Network net(&sched, {});
  NodeId a = net.AddNode(0), b = net.AddNode(0);
  LinkFault fault;
  fault.blocked = true;
  net.SetLinkFault(a, b, fault);
  bool delivered = false;
  net.Send(a, b, 0, [&] { delivered = true; });
  sched.Run();
  EXPECT_FALSE(delivered);
  net.ClearFaults();
  net.Send(a, b, 0, [&] { delivered = true; });
  sched.Run();
  EXPECT_TRUE(delivered);
}

TEST(NetworkFaultTest, DefaultFaultAppliesToAllLinks) {
  Scheduler sched;
  Network net(&sched, {});
  NodeId a = net.AddNode(0), b = net.AddNode(1), c = net.AddNode(2);
  LinkFault fault;
  fault.drop_prob = 1.0;
  net.SetDefaultFault(fault);
  int delivered = 0;
  net.Send(a, b, 0, [&] { ++delivered; });
  net.Send(b, c, 0, [&] { ++delivered; });
  sched.Run();
  EXPECT_EQ(delivered, 0);
  net.SetDefaultFault(LinkFault{});
  net.Send(a, b, 0, [&] { ++delivered; });
  sched.Run();
  EXPECT_EQ(delivered, 1);
}

TEST(NetworkFaultTest, AsymmetricDcPartition) {
  Scheduler sched;
  Network net(&sched, {});
  NodeId a = net.AddNode(0), b = net.AddNode(1);
  net.SetDcLinkBlocked(0, 1, true);  // only DC0 -> DC1 is cut
  int forward = 0, backward = 0;
  net.Send(a, b, 0, [&] { ++forward; });
  net.Send(b, a, 0, [&] { ++backward; });
  sched.Run();
  EXPECT_EQ(forward, 0);
  EXPECT_EQ(backward, 1);

  net.PartitionDcs(0, 1);  // now both directions
  net.Send(b, a, 0, [&] { ++backward; });
  sched.Run();
  EXPECT_EQ(backward, 1);

  net.HealDcs(0, 1);
  net.Send(a, b, 0, [&] { ++forward; });
  net.Send(b, a, 0, [&] { ++backward; });
  sched.Run();
  EXPECT_EQ(forward, 1);
  EXPECT_EQ(backward, 2);
}

TEST(FaultInjectorTest, SameSeedSamePlan) {
  FaultPlanConfig cfg;
  cfg.seed = 99;
  std::vector<NodeId> nodes{0, 1, 2};
  std::vector<DcId> dcs{0, 1, 2};
  FaultPlan p1 = FaultPlan::Generate(cfg, nodes, dcs);
  FaultPlan p2 = FaultPlan::Generate(cfg, nodes, dcs);
  EXPECT_EQ(p1.ToString(), p2.ToString());
  cfg.seed = 100;
  FaultPlan p3 = FaultPlan::Generate(cfg, nodes, dcs);
  EXPECT_NE(p1.ToString(), p3.ToString());
}

TEST(FaultInjectorTest, PlanContainsAllFaultClassesAndHealsItself) {
  FaultPlanConfig cfg;
  cfg.seed = 5;
  cfg.duration_us = 30 * kUsPerSec;
  std::vector<NodeId> nodes{0, 1, 2};
  std::vector<DcId> dcs{0, 1, 2};
  FaultPlan plan = FaultPlan::Generate(cfg, nodes, dcs);
  EXPECT_GT(plan.CountOf(FaultType::kCrashNode), 0u);
  EXPECT_GT(plan.CountOf(FaultType::kPartitionDcs), 0u);
  EXPECT_GT(plan.CountOf(FaultType::kLossyWindowStart), 0u);
  EXPECT_EQ(plan.CountOf(FaultType::kCrashNode),
            plan.CountOf(FaultType::kRestartNode));
  EXPECT_EQ(plan.CountOf(FaultType::kHealAll), 1u);

  Scheduler sched;
  Network net(&sched, {});
  for (int i = 0; i < 3; ++i) net.AddNode(DcId(i));
  int crashes = 0, restarts = 0;
  FaultInjector injector(&net, plan);
  injector.SetCrashHook([&](NodeId) { ++crashes; });
  injector.SetRestartHook([&](NodeId) { ++restarts; });
  injector.Arm();
  sched.Run();
  EXPECT_GT(crashes, 0);
  EXPECT_EQ(crashes, restarts);
  // After the final HealAll the cluster is fully healthy again.
  for (NodeId n = 0; n < 3; ++n) EXPECT_TRUE(net.IsNodeUp(n));
  EXPECT_TRUE(net.default_fault().IsClean());
  bool delivered = false;
  net.Send(0, 1, 0, [&] { delivered = true; });
  sched.Run();
  EXPECT_TRUE(delivered);
}

TEST(FaultInjectorTest, LossyWindowsNeverOverlap) {
  // Overlapping windows would let the first window's end event reset the
  // fault installed by the second, silently ending it early. Generate with
  // an aggressive rate and long spans so overlaps would certainly occur
  // without clamping, then walk the schedule: at most one window is ever
  // open, and ties resolve end-before-start.
  FaultPlanConfig cfg;
  cfg.seed = 17;
  cfg.crashes_per_sec = 0;
  cfg.partitions_per_sec = 0;
  cfg.lossy_windows_per_sec = 5;
  cfg.min_lossy_us = 500 * kUsPerMs;
  cfg.max_lossy_us = 2000 * kUsPerMs;
  cfg.duration_us = 30 * kUsPerSec;
  FaultPlan plan = FaultPlan::Generate(cfg, {0, 1, 2}, {});
  EXPECT_GT(plan.CountOf(FaultType::kLossyWindowStart), 1u);
  int open = 0;
  for (const auto& e : plan.events) {
    if (e.type == FaultType::kLossyWindowStart) {
      ++open;
      EXPECT_LE(open, 1) << e.ToString();
    } else if (e.type == FaultType::kLossyWindowEnd) {
      --open;
      EXPECT_GE(open, 0) << e.ToString();
    }
  }
  EXPECT_EQ(open, 0);
}

TEST(FaultInjectorTest, NeverExceedsMaxConcurrentCrashes) {
  FaultPlanConfig cfg;
  cfg.seed = 11;
  cfg.crashes_per_sec = 10;  // aggressive: forces the cap to matter
  cfg.max_concurrent_crashes = 1;
  cfg.duration_us = 20 * kUsPerSec;
  std::vector<NodeId> nodes{0, 1, 2, 3, 4};
  FaultPlan plan = FaultPlan::Generate(cfg, nodes, {});
  // Walk the schedule: at no instant are two nodes down.
  int down = 0;
  for (const auto& e : plan.events) {
    if (e.type == FaultType::kCrashNode) {
      ++down;
      EXPECT_LE(down, 1) << e.ToString();
    } else if (e.type == FaultType::kRestartNode) {
      --down;
    }
  }
}

TEST(NetworkTest, DcOutageDisablesAllItsNodes) {
  Scheduler sched;
  Network net(&sched, {});
  NodeId a = net.AddNode(0), b = net.AddNode(1), c = net.AddNode(1);
  net.SetDcUp(1, false);
  EXPECT_TRUE(net.IsNodeUp(a));
  EXPECT_FALSE(net.IsNodeUp(b));
  EXPECT_FALSE(net.IsNodeUp(c));
  int delivered = 0;
  net.Send(a, b, 0, [&] { ++delivered; });
  net.Send(b, c, 0, [&] { ++delivered; });
  sched.Run();
  EXPECT_EQ(delivered, 0);
}

TEST(NetworkTest, CountsTraffic) {
  Scheduler sched;
  Network net(&sched, {});
  NodeId a = net.AddNode(0), b = net.AddNode(0);
  net.Send(a, b, 100, [] {});
  net.Send(a, b, 200, [] {});
  sched.Run();
  EXPECT_EQ(net.messages_sent(), 2u);
  EXPECT_EQ(net.bytes_sent(), 300u);
}

TEST(ServerTest, LimitsConcurrency) {
  Scheduler sched;
  Server server(&sched, 2);
  std::vector<SimTime> finish;
  for (int i = 0; i < 4; ++i) {
    server.Execute(100, [&] { finish.push_back(sched.Now()); });
  }
  sched.Run();
  ASSERT_EQ(finish.size(), 4u);
  // Two at t=100, the queued two at t=200.
  EXPECT_EQ(finish[0], 100u);
  EXPECT_EQ(finish[1], 100u);
  EXPECT_EQ(finish[2], 200u);
  EXPECT_EQ(finish[3], 200u);
}

TEST(ServerTest, TracksBusyTime) {
  Scheduler sched;
  Server server(&sched, 1);
  server.Execute(30, [] {});
  server.Execute(70, [] {});
  sched.Run();
  EXPECT_EQ(server.busy_time_us(), 100u);
  EXPECT_EQ(server.busy_cores(), 0u);
}

TEST(ServerTest, WorkSubmittedFromCompletionRuns) {
  Scheduler sched;
  Server server(&sched, 1);
  bool second_done = false;
  server.Execute(10, [&] {
    server.Execute(10, [&] { second_done = true; });
  });
  sched.Run();
  EXPECT_TRUE(second_done);
  EXPECT_EQ(sched.Now(), 20u);
}

}  // namespace
}  // namespace polarx::sim
