// Unit tests for src/storage: values/schemas, key codec, redo log, buffer
// pool, MVCC table, table catalog.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/key_codec.h"
#include "src/storage/mvcc.h"
#include "src/storage/redo.h"
#include "src/storage/table.h"
#include "src/storage/value.h"

namespace polarx {
namespace {

// ---------- values & schema ----------

TEST(ValueTest, CompareOrdersNullsFirst) {
  EXPECT_LT(CompareValues(Value{}, Value{int64_t{0}}), 0);
  EXPECT_GT(CompareValues(Value{std::string("a")}, Value{}), 0);
  EXPECT_EQ(CompareValues(Value{}, Value{}), 0);
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(CompareValues(Value{int64_t{3}}, Value{3.0}), 0);
  EXPECT_LT(CompareValues(Value{int64_t{2}}, Value{2.5}), 0);
  EXPECT_GT(CompareValues(Value{10.0}, Value{int64_t{9}}), 0);
}

TEST(ValueTest, LargeInt64ExactComparison) {
  int64_t a = (1LL << 60) + 1, b = (1LL << 60) + 2;
  EXPECT_LT(CompareValues(Value{a}, Value{b}), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(CompareValues(Value{std::string("abc")},
                          Value{std::string("abd")}), 0);
  EXPECT_EQ(CompareValues(Value{std::string("x")},
                          Value{std::string("x")}), 0);
}

TEST(ValueTest, ConversionHelpers) {
  EXPECT_EQ(*ValueAsInt(Value{int64_t{42}}), 42);
  EXPECT_EQ(*ValueAsInt(Value{42.6}), 43);
  EXPECT_DOUBLE_EQ(*ValueAsDouble(Value{int64_t{5}}), 5.0);
  EXPECT_FALSE(ValueAsInt(Value{std::string("x")}).ok());
}

Schema MakeTestSchema() {
  return Schema({{"id", ValueType::kInt64, false},
                 {"name", ValueType::kString, true},
                 {"balance", ValueType::kDouble, true}},
                {0});
}

TEST(SchemaTest, ValidateRowChecksArityTypesNullability) {
  Schema s = MakeTestSchema();
  EXPECT_TRUE(
      s.ValidateRow({int64_t{1}, std::string("bob"), 10.5}).ok());
  EXPECT_FALSE(s.ValidateRow({int64_t{1}, std::string("bob")}).ok());
  EXPECT_FALSE(
      s.ValidateRow({std::string("1"), std::string("bob"), 1.0}).ok());
  EXPECT_FALSE(s.ValidateRow({Value{}, std::string("b"), 1.0}).ok());
  EXPECT_TRUE(s.ValidateRow({int64_t{1}, Value{}, Value{}}).ok());
}

TEST(SchemaTest, ExtractKeyAndFindColumn) {
  Schema s = MakeTestSchema();
  Row row{int64_t{7}, std::string("x"), 1.0};
  Row key = s.ExtractKey(row);
  ASSERT_EQ(key.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(key[0]), 7);
  EXPECT_EQ(s.FindColumn("balance"), 2);
  EXPECT_EQ(s.FindColumn("missing"), -1);
}

// ---------- key codec ----------

TEST(KeyCodecTest, RoundTripAllTypes) {
  Row values{Value{}, int64_t{-12345}, 3.25, std::string("hello\0world", 11)};
  EncodedKey key = EncodeKey(values);
  auto decoded = DecodeKey(key, values.size());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(CompareValues((*decoded)[i], values[i]), 0) << "col " << i;
  }
}

TEST(KeyCodecTest, EncodingPreservesOrder) {
  Rng rng(99);
  std::vector<Row> rows;
  for (int i = 0; i < 500; ++i) {
    Row r;
    switch (rng.Uniform(3)) {
      case 0:
        r.push_back(rng.UniformRange(-1000000, 1000000));
        break;
      case 1:
        r.push_back(rng.NextDouble() * 2000 - 1000);
        break;
      default:
        r.push_back(rng.AlphaString(rng.Uniform(10)));
        break;
    }
    rows.push_back(std::move(r));
  }
  for (int i = 0; i < 2000; ++i) {
    const Row& a = rows[rng.Uniform(rows.size())];
    const Row& b = rows[rng.Uniform(rows.size())];
    int typed = CompareValues(a[0], b[0]);
    int encoded = EncodeKey(a).compare(EncodeKey(b));
    if (typed < 0) {
      EXPECT_LT(encoded, 0);
    } else if (typed > 0) {
      EXPECT_GT(encoded, 0);
    } else {
      // equal typed values of the same type encode identically
      if (TypeOf(a[0]) == TypeOf(b[0])) EXPECT_EQ(encoded, 0);
    }
  }
}

TEST(KeyCodecTest, CompositeKeysOrderLexicographically) {
  EncodedKey a = EncodeKey({int64_t{1}, std::string("b")});
  EncodedKey b = EncodeKey({int64_t{1}, std::string("c")});
  EncodedKey c = EncodeKey({int64_t{2}, std::string("a")});
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(KeyCodecTest, StringPrefixSortsBeforeExtension) {
  EncodedKey a = EncodeKey({std::string("ab")});
  EncodedKey b = EncodeKey({std::string("abc")});
  EXPECT_LT(a, b);
}

TEST(KeyCodecTest, EmbeddedZerosRoundTrip) {
  std::string weird("a\0b\0\0c", 6);
  EncodedKey key = EncodeKey({weird});
  auto decoded = DecodeKey(key, 1);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(std::get<std::string>((*decoded)[0]), weird);
}

TEST(KeyCodecTest, HashShardingIsStableAndBounded) {
  EncodedKey key = EncodeKey({int64_t{42}});
  uint32_t shard = ShardOf(key, 16);
  EXPECT_LT(shard, 16u);
  EXPECT_EQ(shard, ShardOf(key, 16));  // deterministic
}

TEST(KeyCodecTest, HashDistributesEvenly) {
  // §II-B: hash partitioning on sequential keys must not hotspot one shard.
  constexpr uint32_t kShards = 8;
  std::vector<int> counts(kShards, 0);
  for (int64_t i = 0; i < 8000; ++i) {
    ++counts[ShardOf(EncodeKey({i}), kShards)];
  }
  for (uint32_t s = 0; s < kShards; ++s) {
    EXPECT_GT(counts[s], 700) << "shard " << s;
    EXPECT_LT(counts[s], 1300) << "shard " << s;
  }
}

TEST(KeyCodecTest, DecodeCorruptKeyFails) {
  EncodedKey key = EncodeKey({int64_t{5}});
  key.resize(key.size() - 3);
  EXPECT_FALSE(DecodeKey(key, 1).ok());
  EncodedKey bad = "\x7F";
  EXPECT_FALSE(DecodeKey(bad, 1).ok());
}

// ---------- redo log ----------

RedoRecord MakeInsert(TxnId txn, TableId table, int64_t id,
                      const std::string& name) {
  RedoRecord rec;
  rec.type = RedoType::kInsert;
  rec.txn_id = txn;
  rec.table_id = table;
  rec.key = EncodeKey({id});
  rec.row = {id, name};
  return rec;
}

TEST(RedoLogTest, AppendAssignsMonotoneLsns) {
  RedoLog log;
  EXPECT_EQ(log.current_lsn(), 1u);
  MtrHandle h1 = log.AppendMtr({MakeInsert(1, 1, 1, "a")});
  MtrHandle h2 = log.AppendMtr({MakeInsert(1, 1, 2, "b")});
  EXPECT_EQ(h1.start_lsn, 1u);
  EXPECT_GT(h1.end_lsn, h1.start_lsn);
  EXPECT_EQ(h2.start_lsn, h1.end_lsn);
  EXPECT_EQ(log.current_lsn(), h2.end_lsn);
}

TEST(RedoLogTest, RoundTripRecords) {
  RedoLog log;
  RedoRecord ins = MakeInsert(7, 3, 42, "hello");
  RedoRecord del;
  del.type = RedoType::kDelete;
  del.txn_id = 7;
  del.table_id = 3;
  del.key = EncodeKey({int64_t{42}});
  RedoRecord commit;
  commit.type = RedoType::kTxnCommit;
  commit.txn_id = 7;
  commit.ts = 987654;
  log.AppendMtr({ins, del, commit});

  std::vector<RedoRecord> parsed;
  ASSERT_TRUE(log.ReadRecords(1, log.current_lsn(), &parsed).ok());
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0].type, RedoType::kInsert);
  EXPECT_EQ(parsed[0].txn_id, 7u);
  EXPECT_EQ(parsed[0].table_id, 3u);
  EXPECT_EQ(parsed[0].key, ins.key);
  ASSERT_EQ(parsed[0].row.size(), 2u);
  EXPECT_EQ(std::get<int64_t>(parsed[0].row[0]), 42);
  EXPECT_EQ(std::get<std::string>(parsed[0].row[1]), "hello");
  EXPECT_EQ(parsed[1].type, RedoType::kDelete);
  EXPECT_EQ(parsed[2].type, RedoType::kTxnCommit);
  EXPECT_EQ(parsed[2].ts, 987654u);
  EXPECT_EQ(parsed[0].lsn, 1u);
  EXPECT_GT(parsed[1].lsn, parsed[0].lsn);
}

TEST(RedoLogTest, PaxosRecordIs64Bytes) {
  // §III: MLOG_PAXOS is a fixed 64-byte entry.
  RedoLog log;
  RedoRecord rec;
  rec.type = RedoType::kPaxos;
  rec.paxos = PaxosMeta{5, 100, 1, 4096, 0xDEADBEEF};
  MtrHandle h = log.AppendMtr({rec});
  EXPECT_EQ(h.end_lsn - h.start_lsn, 64u + 8u);  // + length/crc framing
  std::vector<RedoRecord> parsed;
  ASSERT_TRUE(log.ReadRecords(1, log.current_lsn(), &parsed).ok());
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].paxos.epoch, 5u);
  EXPECT_EQ(parsed[0].paxos.index, 100u);
  EXPECT_EQ(parsed[0].paxos.range_start, 1u);
  EXPECT_EQ(parsed[0].paxos.range_end, 4096u);
  EXPECT_EQ(parsed[0].paxos.checksum, 0xDEADBEEFu);
}

TEST(RedoLogTest, ChecksumDetectsCorruption) {
  RedoLog log;
  log.AppendMtr({MakeInsert(1, 1, 1, "a")});
  std::string bytes;
  log.ReadBytes(1, log.current_lsn(), &bytes);
  bytes[bytes.size() / 2] ^= 0x5A;
  std::vector<RedoRecord> parsed;
  EXPECT_FALSE(RedoLog::ParseRecords(bytes, 1, &parsed).ok());
}

TEST(RedoLogTest, PartialTailIsIgnored) {
  RedoLog log;
  log.AppendMtr({MakeInsert(1, 1, 1, "a")});
  log.AppendMtr({MakeInsert(1, 1, 2, "b")});
  std::string bytes;
  log.ReadBytes(1, log.current_lsn(), &bytes);
  bytes.resize(bytes.size() - 5);  // cut into the second record
  std::vector<RedoRecord> parsed;
  ASSERT_TRUE(RedoLog::ParseRecords(bytes, 1, &parsed).ok());
  EXPECT_EQ(parsed.size(), 1u);
}

TEST(RedoLogTest, PurgePreventsOldReads) {
  RedoLog log;
  MtrHandle h1 = log.AppendMtr({MakeInsert(1, 1, 1, "a")});
  log.AppendMtr({MakeInsert(1, 1, 2, "b")});
  log.PurgeBefore(h1.end_lsn);
  EXPECT_EQ(log.purged_before(), h1.end_lsn);
  std::vector<RedoRecord> parsed;
  EXPECT_FALSE(log.ReadRecords(1, log.current_lsn(), &parsed).ok());
  parsed.clear();
  ASSERT_TRUE(log.ReadRecords(h1.end_lsn, log.current_lsn(), &parsed).ok());
  EXPECT_EQ(parsed.size(), 1u);
}

TEST(RedoLogTest, TruncateDiscardsSuffix) {
  RedoLog log;
  MtrHandle h1 = log.AppendMtr({MakeInsert(1, 1, 1, "a")});
  log.AppendMtr({MakeInsert(1, 1, 2, "b")});
  log.MarkFlushed(log.current_lsn());
  log.TruncateTo(h1.end_lsn);
  EXPECT_EQ(log.current_lsn(), h1.end_lsn);
  EXPECT_EQ(log.flushed_lsn(), h1.end_lsn);
  std::vector<RedoRecord> parsed;
  ASSERT_TRUE(log.ReadRecords(1, log.current_lsn(), &parsed).ok());
  EXPECT_EQ(parsed.size(), 1u);
}

TEST(RedoLogTest, FlushedLsnMonotone) {
  RedoLog log;
  MtrHandle h1 = log.AppendMtr({MakeInsert(1, 1, 1, "a")});
  MtrHandle h2 = log.AppendMtr({MakeInsert(1, 1, 2, "b")});
  log.MarkFlushed(h2.end_lsn);
  log.MarkFlushed(h1.end_lsn);
  EXPECT_EQ(log.flushed_lsn(), h2.end_lsn);
}

TEST(RedoLogTest, MarkFlushedClampsToLogEnd) {
  // A stale flush completion (scheduled before a crash, firing after the
  // recovering node truncated its suffix) must not mark nonexistent bytes
  // flushed.
  RedoLog log;
  MtrHandle h1 = log.AppendMtr({MakeInsert(1, 1, 1, "a")});
  MtrHandle h2 = log.AppendMtr({MakeInsert(1, 1, 2, "b")});
  log.TruncateTo(h1.end_lsn);
  log.MarkFlushed(h2.end_lsn);  // stale completion for truncated bytes
  EXPECT_EQ(log.flushed_lsn(), h1.end_lsn);
}

TEST(Crc32Test, KnownProperties) {
  EXPECT_EQ(Crc32("", 0), Crc32("", 0));
  EXPECT_NE(Crc32("abc", 3), Crc32("abd", 3));
  uint32_t once = Crc32("hello world", 11);
  EXPECT_EQ(once, Crc32("hello world", 11));
}

// ---------- buffer pool ----------

TEST(BufferPoolTest, FlushGateRespectsLsnLimit) {
  CountingPageStore store;
  BufferPool pool(&store);
  pool.MarkDirty(MakePageId(1, 0), 100);
  pool.MarkDirty(MakePageId(1, 1), 200);
  pool.MarkDirty(MakePageId(1, 2), 300);
  EXPECT_EQ(pool.dirty_pages(), 3u);
  // DLSN = 250: only pages whose newest mod <= 250 may be flushed.
  EXPECT_EQ(pool.FlushUpTo(250), 2u);
  EXPECT_EQ(pool.dirty_pages(), 1u);
  EXPECT_EQ(store.writes(), 2u);
  EXPECT_EQ(pool.FlushUpTo(1000), 1u);
  EXPECT_EQ(pool.dirty_pages(), 0u);
}

TEST(BufferPoolTest, RedirtyRaisesNewestMod) {
  CountingPageStore store;
  BufferPool pool(&store);
  PageId p = MakePageId(1, 0);
  pool.MarkDirty(p, 100);
  pool.MarkDirty(p, 500);
  EXPECT_EQ(pool.FlushUpTo(200), 0u);  // newest mod is 500 > 200
  EXPECT_EQ(pool.FlushUpTo(500), 1u);
  EXPECT_EQ(store.PersistedLsn(p), 500u);
}

TEST(BufferPoolTest, MinDirtyLsnTracksOldestModification) {
  CountingPageStore store;
  BufferPool pool(&store);
  EXPECT_EQ(pool.MinDirtyLsn(), kMaxLsn);
  pool.MarkDirty(MakePageId(1, 0), 300);
  pool.MarkDirty(MakePageId(1, 1), 100);
  pool.MarkDirty(MakePageId(1, 1), 400);  // oldest stays 100
  EXPECT_EQ(pool.MinDirtyLsn(), 100u);
  pool.FlushUpTo(400);
  EXPECT_EQ(pool.MinDirtyLsn(), kMaxLsn);
}

TEST(BufferPoolTest, DiscardDirtyAfterEvictsUnackedPages) {
  // §III old-leader cleanup: evict dirty pages with mods beyond DLSN.
  CountingPageStore store;
  BufferPool pool(&store);
  pool.MarkDirty(MakePageId(1, 0), 100);
  pool.MarkDirty(MakePageId(1, 1), 900);
  EXPECT_EQ(pool.DiscardDirtyAfter(500), 1u);
  EXPECT_EQ(pool.dirty_pages(), 1u);
  EXPECT_EQ(store.writes(), 0u);  // discarded, never flushed
}

TEST(BufferPoolTest, FlushAndDropTableDrainsTenantPages) {
  CountingPageStore store;
  BufferPool pool(&store);
  pool.MarkDirty(MakePageId(1, 0), 100);
  pool.MarkDirty(MakePageId(1, 1), 999999);  // beyond any gate
  pool.MarkDirty(MakePageId(2, 0), 100);
  EXPECT_EQ(pool.FlushAndDropTable(1), 2u);
  EXPECT_EQ(pool.dirty_pages(), 1u);
  EXPECT_EQ(pool.resident_pages(), 1u);
}

TEST(BufferPoolTest, LruEvictsOnlyCleanPages) {
  CountingPageStore store;
  BufferPool pool(&store, /*capacity_pages=*/2);
  pool.MarkDirty(MakePageId(1, 0), 10);
  pool.MarkDirty(MakePageId(1, 1), 20);
  // Over capacity with a clean newcomer: the clean page is the only eviction
  // candidate, so the two dirty pages stay.
  pool.Touch(MakePageId(1, 2));
  EXPECT_EQ(pool.resident_pages(), 2u);
  EXPECT_EQ(pool.dirty_pages(), 2u);
  EXPECT_GT(pool.evictions(), 0u);
  // Once flushed clean, LRU eviction applies normally.
  pool.FlushUpTo(100);
  pool.Touch(MakePageId(1, 3));
  EXPECT_LE(pool.resident_pages(), 2u);
}

// ---------- MVCC ----------

VersionPtr MakeVersion(TxnId txn, Timestamp cts, int64_t val,
                       bool deleted = false) {
  auto v = std::make_shared<Version>(txn, deleted, Row{val});
  if (cts != kInvalidTimestamp) {
    v->commit_ts.store(cts, std::memory_order_release);
  }
  return v;
}

TEST(MvccTableTest, PushAndHead) {
  MvccTable t;
  EncodedKey k = EncodeKey({int64_t{1}});
  EXPECT_EQ(t.Head(k), nullptr);
  t.Push(k, MakeVersion(1, 10, 100));
  t.Push(k, MakeVersion(2, 20, 200));
  VersionPtr head = t.Head(k);
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(std::get<int64_t>(head->row[0]), 200);
  ASSERT_NE(head->prev, nullptr);
  EXPECT_EQ(std::get<int64_t>(head->prev->row[0]), 100);
}

TEST(MvccTableTest, PushCheckedConflictRules) {
  MvccTable t;
  EncodedKey k = EncodeKey({int64_t{1}});
  // Uncommitted head from txn 1 blocks txn 2.
  ASSERT_EQ(t.PushChecked(k, MakeVersion(1, kInvalidTimestamp, 1), 100, 1),
            MvccTable::PushResult::kOk);
  EXPECT_EQ(t.PushChecked(k, MakeVersion(2, kInvalidTimestamp, 2), 100, 2),
            MvccTable::PushResult::kConflictUncommitted);
  // Own head is fine.
  EXPECT_EQ(t.PushChecked(k, MakeVersion(1, kInvalidTimestamp, 3), 100, 1),
            MvccTable::PushResult::kOk);
}

TEST(MvccTableTest, PushCheckedFirstCommitterWins) {
  MvccTable t;
  EncodedKey k = EncodeKey({int64_t{1}});
  t.Push(k, MakeVersion(1, 500, 1));  // committed at 500
  // Writer with snapshot 400 must not overwrite (lost update).
  EXPECT_EQ(t.PushChecked(k, MakeVersion(2, kInvalidTimestamp, 2), 400, 2),
            MvccTable::PushResult::kConflictNewer);
  // Writer with snapshot 600 may.
  EXPECT_EQ(t.PushChecked(k, MakeVersion(3, kInvalidTimestamp, 3), 600, 3),
            MvccTable::PushResult::kOk);
}

TEST(MvccTableTest, RemoveUncommittedPopsOnlyOwnHead) {
  MvccTable t;
  EncodedKey k = EncodeKey({int64_t{1}});
  t.Push(k, MakeVersion(1, 10, 100));
  t.Push(k, MakeVersion(2, kInvalidTimestamp, 200));
  EXPECT_FALSE(t.RemoveUncommitted(k, 99));  // not the owner
  EXPECT_TRUE(t.RemoveUncommitted(k, 2));
  EXPECT_EQ(std::get<int64_t>(t.Head(k)->row[0]), 100);
  EXPECT_FALSE(t.RemoveUncommitted(k, 1));  // committed head: refuse
}

TEST(MvccTableTest, RemoveLastVersionErasesKey) {
  MvccTable t;
  EncodedKey k = EncodeKey({int64_t{1}});
  t.Push(k, MakeVersion(1, kInvalidTimestamp, 100));
  EXPECT_TRUE(t.RemoveUncommitted(k, 1));
  EXPECT_EQ(t.NumKeys(), 0u);
}

TEST(MvccTableTest, ScanRangeOrdersKeys) {
  MvccTable t;
  for (int64_t i : {5, 1, 9, 3, 7}) {
    t.Push(EncodeKey({i}), MakeVersion(1, 10, i));
  }
  std::vector<int64_t> seen;
  t.ScanRange(EncodeKey({int64_t{2}}), EncodeKey({int64_t{8}}),
              [&](const EncodedKey&, const VersionPtr& v) {
                seen.push_back(std::get<int64_t>(v->row[0]));
                return true;
              });
  EXPECT_EQ(seen, (std::vector<int64_t>{3, 5, 7}));
}

TEST(MvccTableTest, VacuumDropsInvisibleTail) {
  MvccTable t;
  EncodedKey k = EncodeKey({int64_t{1}});
  t.Push(k, MakeVersion(1, 10, 1));
  t.Push(k, MakeVersion(2, 20, 2));
  t.Push(k, MakeVersion(3, 30, 3));
  size_t freed = t.Vacuum(25);
  EXPECT_EQ(freed, 1u);  // version @10 is invisible to any snapshot >= 25
  VersionPtr head = t.Head(k);
  EXPECT_EQ(std::get<int64_t>(head->row[0]), 3);
  ASSERT_NE(head->prev, nullptr);
  EXPECT_EQ(std::get<int64_t>(head->prev->row[0]), 2);
  EXPECT_EQ(head->prev->prev, nullptr);
}

TEST(MvccTableTest, VacuumRemovesOldTombstonedKeys) {
  MvccTable t;
  EncodedKey k = EncodeKey({int64_t{1}});
  t.Push(k, MakeVersion(1, 10, 1));
  t.Push(k, MakeVersion(2, 20, 0, /*deleted=*/true));
  EXPECT_EQ(t.Vacuum(100), 2u);
  EXPECT_EQ(t.NumKeys(), 0u);
}

// ---------- tables & catalog ----------

TEST(LocalIndexTest, InsertLookupRemove) {
  LocalIndex idx("by_name", {1});
  Row row{int64_t{1}, std::string("bob")};
  EncodedKey ikey = idx.KeyFor(row);
  EncodedKey pk = EncodeKey({int64_t{1}});
  idx.Insert(ikey, pk);
  auto hits = idx.Lookup(ikey, "");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], pk);
  idx.Remove(ikey, pk);
  EXPECT_TRUE(idx.Lookup(ikey, "").empty());
}

TEST(LocalIndexTest, RangeLookup) {
  LocalIndex idx("by_val", {0});
  for (int64_t i = 0; i < 10; ++i) {
    idx.Insert(EncodeKey({i}), EncodeKey({i + 100}));
  }
  auto hits = idx.Lookup(EncodeKey({int64_t{3}}), EncodeKey({int64_t{7}}));
  EXPECT_EQ(hits.size(), 4u);
}

TEST(TableCatalogTest, CreateFindDrop) {
  TableCatalog catalog;
  auto t1 = catalog.CreateTable(1, "users", MakeTestSchema(), 10);
  ASSERT_TRUE(t1.ok());
  EXPECT_FALSE(catalog.CreateTable(1, "dup", MakeTestSchema()).ok());
  EXPECT_EQ(catalog.FindTable(1), *t1);
  EXPECT_EQ(catalog.FindTableByName("users"), *t1);
  EXPECT_EQ(catalog.FindTable(2), nullptr);
  EXPECT_TRUE(catalog.DropTable(1).ok());
  EXPECT_FALSE(catalog.DropTable(1).ok());
}

TEST(TableCatalogTest, TablesOfTenant) {
  TableCatalog catalog;
  catalog.CreateTable(1, "a", MakeTestSchema(), 10);
  catalog.CreateTable(2, "b", MakeTestSchema(), 10);
  catalog.CreateTable(3, "c", MakeTestSchema(), 20);
  EXPECT_EQ(catalog.TablesOfTenant(10).size(), 2u);
  EXPECT_EQ(catalog.TablesOfTenant(20).size(), 1u);
  EXPECT_EQ(catalog.AllTables().size(), 3u);
}

}  // namespace
}  // namespace polarx
