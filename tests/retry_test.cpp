// Unit tests for the generic retry policy (src/common/retry.h) and the
// retryable-vs-fatal Status classification it keys off.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/retry.h"
#include "src/common/status.h"

namespace polarx {
namespace {

TEST(StatusRetryabilityTest, TransientCodesAreRetryable) {
  EXPECT_TRUE(Status::Busy("lock held").retryable());
  EXPECT_TRUE(Status::TimedOut("rpc").retryable());
  EXPECT_TRUE(Status::NotLeader("stale route").retryable());
  EXPECT_TRUE(Status::LeaseExpired("churn").retryable());
  EXPECT_TRUE(Status::Unavailable("node down").retryable());
}

TEST(StatusRetryabilityTest, FatalCodesAreNotRetryable) {
  EXPECT_FALSE(Status::Ok().retryable());
  EXPECT_FALSE(Status::InvalidArgument("bad").retryable());
  EXPECT_FALSE(Status::NotFound("missing").retryable());
  EXPECT_FALSE(Status::Conflict("write-write").retryable());
  EXPECT_FALSE(Status::Aborted("txn").retryable());
}

TEST(RetryStateTest, RetryableFailuresRetryUpToAttemptCap) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.deadline_us = 0;  // attempts-only
  RetryState retry(policy, /*start_us=*/0, /*seed=*/1);
  int granted = 0;
  // max_attempts includes the first attempt, so 4 attempts = 3 retries.
  while (retry.ShouldRetry(Status::Unavailable("down"), /*now_us=*/0)) {
    ++granted;
    ASSERT_LT(granted, 100) << "retry loop never terminated";
  }
  EXPECT_EQ(granted, 3);
}

TEST(RetryStateTest, FatalFailureStopsImmediately) {
  RetryPolicy policy;
  RetryState retry(policy, 0, 1);
  EXPECT_FALSE(retry.ShouldRetry(Status::Conflict("lost race"), 0));
  EXPECT_FALSE(retry.ShouldRetry(Status::Aborted("txn aborted"), 0));
  EXPECT_FALSE(retry.ShouldRetry(Status::Ok(), 0));
}

TEST(RetryStateTest, DeadlineCutsOffRetries) {
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.deadline_us = 10 * 1000;
  RetryState retry(policy, /*start_us=*/5000, /*seed=*/7);
  EXPECT_EQ(retry.deadline_at(), 15000u);
  EXPECT_TRUE(retry.ShouldRetry(Status::TimedOut("t"), /*now_us=*/14999));
  EXPECT_FALSE(retry.ShouldRetry(Status::TimedOut("t"), /*now_us=*/15000));
}

TEST(RetryStateTest, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff_us = 100;
  policy.max_backoff_us = 800;
  policy.multiplier = 2.0;
  policy.jitter = 0;  // deterministic nominal values
  RetryState retry(policy, 0, 3);
  EXPECT_EQ(retry.NextBackoffUs(), 100u);
  EXPECT_EQ(retry.NextBackoffUs(), 200u);
  EXPECT_EQ(retry.NextBackoffUs(), 400u);
  EXPECT_EQ(retry.NextBackoffUs(), 800u);
  EXPECT_EQ(retry.NextBackoffUs(), 800u);  // capped
}

TEST(RetryStateTest, JitterStaysWithinConfiguredBand) {
  RetryPolicy policy;
  policy.initial_backoff_us = 1000;
  policy.max_backoff_us = 1000;  // hold nominal constant
  policy.jitter = 0.5;
  RetryState retry(policy, 0, 42);
  for (int i = 0; i < 32; ++i) {
    uint64_t b = retry.NextBackoffUs();
    EXPECT_GE(b, 500u);
    EXPECT_LE(b, 1000u);
  }
}

TEST(RetryStateTest, SameSeedYieldsIdenticalBackoffSequence) {
  RetryPolicy policy;
  RetryState a(policy, 0, 99);
  RetryState b(policy, 0, 99);
  std::vector<uint64_t> seq_a, seq_b;
  for (int i = 0; i < 8; ++i) {
    seq_a.push_back(a.NextBackoffUs());
    seq_b.push_back(b.NextBackoffUs());
  }
  EXPECT_EQ(seq_a, seq_b);

  RetryState c(policy, 0, 100);
  bool any_diff = false;
  for (int i = 0; i < 8; ++i) {
    if (c.NextBackoffUs() != seq_a[size_t(i)]) any_diff = true;
  }
  EXPECT_TRUE(any_diff) << "different seeds should jitter differently";
}

}  // namespace
}  // namespace polarx
